package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xsearch/internal/enclave"
	"xsearch/internal/fleet"
	"xsearch/internal/proxy"
)

// AutoscaleConfig sizes the elastic-fleet ablation: a load ramp against an
// autoscaling fleet (min..max shards) versus the same peak load against a
// statically provisioned max-size fleet. Each shard is concurrency-bound
// the way the fleet ablation's are (few TCS, realistic engine latency) and
// runs the async pipeline with a shallow depth, so admission occupancy —
// the autoscaler's primary signal — saturates quickly under load. The
// claims under test: the fleet grows 1→max under load and shrinks back to
// min when it lifts, NO request is lost across any spawn/drain/retire
// event, elastic peak throughput tracks the static max-size line, and the
// per-shard EPC invariant (heap == history + cache + index) is green on both sides
// of every sealed scale-down handoff.
type AutoscaleConfig struct {
	// MinShards..MaxShards is the elastic range (the ramp should traverse
	// all of it, both directions).
	MinShards int
	MaxShards int
	// Workers concurrent clients apply the peak load; LowWorkers the
	// trickle that lets the fleet scale back down.
	Workers    int
	LowWorkers int
	// EngineService is the engine's per-request service latency;
	// TCSPerShard and PipelineDepth bound each shard (depth is what
	// occupancy is measured against).
	EngineService time.Duration
	TCSPerShard   int
	PipelineDepth int
	// ScaleInterval/ScaleCooldown parameterize the autoscaler (aggressive
	// for a bench run; production uses the defaults).
	ScaleInterval time.Duration
	ScaleCooldown time.Duration
	// RampTimeout bounds how long the fleet gets to reach MaxShards under
	// peak load; CoolTimeout how long to return to MinShards after it
	// lifts. PeakWindow is the throughput measurement window at peak.
	RampTimeout time.Duration
	CoolTimeout time.Duration
	PeakWindow  time.Duration
	// DocsPerTopic sizes the engine corpus; Seed fixes randomness.
	DocsPerTopic int
	Seed         uint64
}

// DefaultAutoscaleConfig is the full-size ablation.
func DefaultAutoscaleConfig() AutoscaleConfig {
	return AutoscaleConfig{
		MinShards:     1,
		MaxShards:     4,
		Workers:       16,
		LowWorkers:    1,
		EngineService: 3 * time.Millisecond,
		TCSPerShard:   2,
		PipelineDepth: 4,
		ScaleInterval: 25 * time.Millisecond,
		ScaleCooldown: 150 * time.Millisecond,
		RampTimeout:   10 * time.Second,
		CoolTimeout:   10 * time.Second,
		PeakWindow:    time.Second,
		DocsPerTopic:  20,
		Seed:          1,
	}
}

// AutoscaleResult carries the ablation's measurements.
type AutoscaleResult struct {
	// The ramp: shards reached at peak, time from peak-load onset to the
	// last scale-up, and shards after the load lifted.
	PeakShards  int
	RampTime    time.Duration
	FinalShards int
	// Peak throughput: the elastic fleet at max size versus the statically
	// provisioned max-size fleet, and their ratio (1.0 = elastic capacity
	// costs nothing once scaled).
	ElasticPeakRPS float64
	StaticPeakRPS  float64
	PeakRatio      float64
	// Issued/Lost count every request across every phase; Lost must be
	// zero — scale events may slow a request, never drop it.
	Issued int64
	Lost   int64
	// Scale-event accounting from the gateway.
	ScaleUps   uint64
	ScaleDowns uint64
	// InvariantOK reports heap == history + cache + index on every live shard
	// before the first scale-down and after the last one (both sides of
	// every sealed handoff; between the two the fleet only drains).
	InvariantOK bool
}

// RunAutoscale measures elastic scaling end to end.
func RunAutoscale(cfg AutoscaleConfig) (*AutoscaleResult, error) {
	if cfg.MinShards < 1 || cfg.MaxShards < cfg.MinShards {
		return nil, fmt.Errorf("autoscale: bad shard range %d..%d", cfg.MinShards, cfg.MaxShards)
	}
	if cfg.Workers <= 0 || cfg.PeakWindow <= 0 {
		return nil, fmt.Errorf("autoscale: need workers and a peak window")
	}
	res := &AutoscaleResult{InvariantOK: true}
	if err := runAutoscaleStatic(cfg, res); err != nil {
		return nil, fmt.Errorf("autoscale static reference: %w", err)
	}
	if err := runAutoscaleElastic(cfg, res); err != nil {
		return nil, fmt.Errorf("autoscale elastic: %w", err)
	}
	if res.StaticPeakRPS > 0 {
		res.PeakRatio = res.ElasticPeakRPS / res.StaticPeakRPS
	}
	return res, nil
}

// newElasticShardConfig is the per-shard template both fleets share.
func newElasticShardConfig(cfg AutoscaleConfig, engineAddr string) proxy.Config {
	return proxy.Config{
		K:             2,
		Engines:       []proxy.EngineSpec{{Host: engineAddr}},
		Seed:          cfg.Seed,
		AsyncOcalls:   true,
		PipelineDepth: cfg.PipelineDepth,
		EnclaveConfig: enclave.Config{TCSCount: cfg.TCSPerShard},
	}
}

// elasticLoad drives distinct queries from `workers` goroutines until stop
// closes, counting every issue and every loss (an error after 3 attempts;
// retries model a client's normal response to a transient re-route).
func elasticLoad(g *fleet.Gateway, workers int, label string, stop <-chan struct{}, issued, completed, lost *atomic.Int64) *sync.WaitGroup {
	var wg sync.WaitGroup
	var seq atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := seq.Add(1)
				issued.Add(1)
				q := fmt.Sprintf("%s query %d", label, i)
				ok := false
				for attempt := 0; attempt < 3 && !ok; attempt++ {
					if _, err := g.ServeQuery(context.Background(), q); err == nil {
						ok = true
					}
				}
				if ok {
					completed.Add(1)
				} else {
					lost.Add(1)
				}
			}
		}()
	}
	return &wg
}

// measureWindow samples completed-request throughput over the window.
func measureWindow(completed *atomic.Int64, window time.Duration) float64 {
	before := completed.Load()
	time.Sleep(window)
	return float64(completed.Load()-before) / window.Seconds()
}

// runAutoscaleStatic measures the reference: a fixed MaxShards fleet under
// the peak load.
func runAutoscaleStatic(cfg AutoscaleConfig, res *AutoscaleResult) error {
	srv, err := slowEngine(FleetConfig{DocsPerTopic: cfg.DocsPerTopic, Seed: cfg.Seed, EngineService: cfg.EngineService})
	if err != nil {
		return err
	}
	defer shutdownServer(srv)
	g, err := fleet.New(fleet.Config{
		Shards:         cfg.MaxShards,
		ShardConfig:    newElasticShardConfig(cfg, srv.Addr()),
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	for i := 0; i < 2*cfg.MaxShards; i++ {
		if _, err := g.ServeQuery(context.Background(), fmt.Sprintf("static warm %d", i)); err != nil {
			return err
		}
	}
	var issued, completed, lost atomic.Int64
	stop := make(chan struct{})
	wg := elasticLoad(g, cfg.Workers, "static", stop, &issued, &completed, &lost)
	time.Sleep(cfg.PeakWindow / 2) // settle
	res.StaticPeakRPS = measureWindow(&completed, cfg.PeakWindow)
	close(stop)
	wg.Wait()
	if n := lost.Load(); n > 0 {
		return fmt.Errorf("%d requests lost with a static healthy fleet", n)
	}
	res.Issued += issued.Load()
	return nil
}

// runAutoscaleElastic drives the ramp: low load at MinShards, peak load
// until the autoscaler reaches MaxShards, a measured peak window, then
// load removal until the fleet drains itself back to MinShards.
func runAutoscaleElastic(cfg AutoscaleConfig, res *AutoscaleResult) error {
	srv, err := slowEngine(FleetConfig{DocsPerTopic: cfg.DocsPerTopic, Seed: cfg.Seed, EngineService: cfg.EngineService})
	if err != nil {
		return err
	}
	defer shutdownServer(srv)
	g, err := fleet.New(fleet.Config{
		Shards:    cfg.MinShards,
		ShardsMin: cfg.MinShards,
		ShardsMax: cfg.MaxShards,
		Autoscale: &fleet.AutoscalePolicy{
			Interval: cfg.ScaleInterval,
			Cooldown: cfg.ScaleCooldown,
		},
		ShardConfig:    newElasticShardConfig(cfg, srv.Addr()),
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()

	var issued, completed, lost atomic.Int64
	finish := func(err error) error {
		st := g.Stats()
		res.Issued += issued.Load()
		res.Lost = lost.Load()
		res.ScaleUps = st.ScaleUps
		res.ScaleDowns = st.ScaleDowns
		if err != nil {
			return err
		}
		if res.Lost > 0 {
			return fmt.Errorf("%d of %d requests lost across scale events", res.Lost, res.Issued)
		}
		return nil
	}

	// Warm the founding shard's history (the paper's bootstrap) at low
	// load; the fleet must stay at min.
	for i := 0; i < 4; i++ {
		if _, err := g.ServeQuery(context.Background(), fmt.Sprintf("elastic warm %d", i)); err != nil {
			return finish(err)
		}
	}

	// Peak load on: the occupancy signal should carry the fleet to max,
	// one cooldown-spaced spawn at a time.
	stopPeak := make(chan struct{})
	peakWG := elasticLoad(g, cfg.Workers, "peak", stopPeak, &issued, &completed, &lost)
	rampStart := time.Now()
	rampDeadline := rampStart.Add(cfg.RampTimeout)
	for {
		st := g.Stats()
		if st.AliveShards >= cfg.MaxShards {
			res.PeakShards = st.AliveShards
			res.RampTime = time.Since(rampStart)
			break
		}
		if time.Now().After(rampDeadline) {
			close(stopPeak)
			peakWG.Wait()
			return finish(fmt.Errorf("fleet never reached %d shards under load (at %d; last decision %q)",
				cfg.MaxShards, st.AliveShards, st.LastScaleDecision))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Measured peak throughput at full size, load still on.
	res.ElasticPeakRPS = measureWindow(&completed, cfg.PeakWindow)
	close(stopPeak)
	peakWG.Wait()

	// Both-sides invariant, side one: every live shard green before any
	// scale-down handoff runs.
	if !fleetInvariantOK(g) {
		res.InvariantOK = false
	}

	// Load off (a trickle keeps requests flowing THROUGH the scale-downs
	// so a dropped request cannot hide); the fleet must drain itself back
	// to min, one sealed handoff at a time.
	stopLow := make(chan struct{})
	lowWG := elasticLoad(g, cfg.LowWorkers, "cool", stopLow, &issued, &completed, &lost)
	coolDeadline := time.Now().Add(cfg.CoolTimeout)
	for {
		st := g.Stats()
		if st.CurrentShards <= cfg.MinShards {
			res.FinalShards = st.CurrentShards
			break
		}
		if time.Now().After(coolDeadline) {
			close(stopLow)
			lowWG.Wait()
			return finish(fmt.Errorf("fleet never drained back to %d shards (at %d; last decision %q)",
				cfg.MinShards, st.CurrentShards, st.LastScaleDecision))
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stopLow)
	lowWG.Wait()

	// Both-sides invariant, side two: every surviving shard green after
	// the last handoff (the merged windows included).
	if !fleetInvariantOK(g) {
		res.InvariantOK = false
	}
	return finish(nil)
}
