package searchengine

import (
	"fmt"
	"sync"
	"time"

	"xsearch/internal/textutil"
)

// Engine is the complete search engine: index + the honest-but-curious
// behaviours the adversary model assumes (§3): it answers queries
// faithfully but logs every (source, query) pair and builds per-source
// interest profiles that a re-identification attack can consume.
type Engine struct {
	index *Index

	mu       sync.Mutex
	queryLog []LoggedQuery
	profiles map[string]textutil.Vector

	limiter *RateLimiter
}

// LoggedQuery is one entry of the engine's query log.
type LoggedQuery struct {
	Source string // client identity as seen by the engine (IP or proxy)
	Query  string
	Time   time.Time
}

// Option configures an Engine.
type Option interface {
	apply(*engineOptions)
}

type engineOptions struct {
	corpus  []Document
	limiter *RateLimiter
}

type corpusOption []Document

func (c corpusOption) apply(o *engineOptions) { o.corpus = c }

// WithCorpus supplies a pre-built corpus instead of the default one.
func WithCorpus(docs []Document) Option { return corpusOption(docs) }

type limiterOption struct{ l *RateLimiter }

func (l limiterOption) apply(o *engineOptions) { o.limiter = l.l }

// WithRateLimiter installs a per-source rate limiter, modelling the
// query-per-day caps Bing imposed on the paper's experiments.
func WithRateLimiter(l *RateLimiter) Option { return limiterOption{l} }

// NewEngine builds an engine over the default (or supplied) corpus.
func NewEngine(opts ...Option) *Engine {
	var o engineOptions
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.corpus == nil {
		o.corpus = GenerateCorpus(DefaultCorpusConfig())
	}
	return &Engine{
		index:    BuildIndex(o.corpus),
		profiles: make(map[string]textutil.Vector),
		limiter:  o.limiter,
	}
}

// ErrRateLimited is returned when a source exceeds its query budget.
var ErrRateLimited = fmt.Errorf("searchengine: rate limited")

// Search runs a query on behalf of source, logging it and updating the
// source's profile (curious behaviour). perList bounds each sub-query's
// result list; OR queries are split and merged per the paper's methodology.
func (e *Engine) Search(source, query string, perList int) ([]Result, error) {
	if e.limiter != nil && !e.limiter.Allow(source) {
		return nil, ErrRateLimited
	}
	e.observe(source, query)
	return e.index.SearchOR(query, perList), nil
}

// observe implements the curious side: log the query and fold its terms
// into the source's profile.
func (e *Engine) observe(source, query string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queryLog = append(e.queryLog, LoggedQuery{Source: source, Query: query, Time: time.Now()})
	p, ok := e.profiles[source]
	if !ok {
		p = textutil.Vector{}
		e.profiles[source] = p
	}
	p.Add(query, 1)
}

// QueryLog returns a copy of the engine's query log.
func (e *Engine) QueryLog() []LoggedQuery {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LoggedQuery, len(e.queryLog))
	copy(out, e.queryLog)
	return out
}

// Profile returns a copy of the interest profile observed for source.
func (e *Engine) Profile(source string) textutil.Vector {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.profiles[source]; ok {
		return p.Clone()
	}
	return textutil.Vector{}
}

// NumDocs exposes the corpus size.
func (e *Engine) NumDocs() int { return e.index.NumDocs() }

// RateLimiter caps queries per source per window (token bucket refilled on
// window boundaries).
type RateLimiter struct {
	mu     sync.Mutex
	limit  int
	window time.Duration
	counts map[string]*windowCount
	now    func() time.Time
}

type windowCount struct {
	windowStart time.Time
	n           int
}

// NewRateLimiter allows limit requests per source per window.
func NewRateLimiter(limit int, window time.Duration) *RateLimiter {
	return &RateLimiter{
		limit:  limit,
		window: window,
		counts: make(map[string]*windowCount),
		now:    time.Now,
	}
}

// Allow reports whether source may issue one more request.
func (r *RateLimiter) Allow(source string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	wc, ok := r.counts[source]
	if !ok || now.Sub(wc.windowStart) >= r.window {
		r.counts[source] = &windowCount{windowStart: now, n: 1}
		return true
	}
	if wc.n >= r.limit {
		return false
	}
	wc.n++
	return true
}
