package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xsearch/internal/enclave"
	"xsearch/internal/searchengine"
)

// Tests for the upstream-set redesign: weighted fan-out across engines,
// breaker-gated failover around dead upstreams, re-probing after cooldown,
// and single-flight coalescing of concurrent identical queries.

// newFanoutEngine starts one loopback search engine on addr ("127.0.0.1:0"
// picks a port) and returns it with its server.
func newFanoutEngine(t *testing.T, addr string) (*searchengine.Engine, *searchengine.Server) {
	t.Helper()
	engine := searchengine.NewEngine(searchengine.WithCorpus(
		searchengine.GenerateCorpus(searchengine.CorpusConfig{DocsPerTopic: 10, Seed: 1})))
	srv := searchengine.NewServer(engine)
	if err := srv.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return engine, srv
}

// reservePort grabs a loopback port and closes the listener, returning an
// address nothing listens on (a "dead upstream" until a test revives it).
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// Two healthy upstreams: the fan-out must spread distinct queries across
// both, and the per-upstream stats must account for every request.
func TestFanoutSpreadsLoadAcrossUpstreams(t *testing.T) {
	engA, srvA := newFanoutEngine(t, "127.0.0.1:0")
	engB, srvB := newFanoutEngine(t, "127.0.0.1:0")
	p, err := New(Config{
		K:    1,
		Seed: 1,
		Engines: []EngineSpec{
			{Host: srvA.Addr()},
			{Host: srvB.Addr()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()

	const total = 40
	for i := 0; i < total; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("fanout query %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := len(engA.QueryLog()), len(engB.QueryLog())
	if a+b != total {
		t.Errorf("engines saw %d+%d queries, want %d", a, b, total)
	}
	if a == 0 || b == 0 {
		t.Errorf("fan-out left an upstream idle: %d vs %d", a, b)
	}
	s := p.Stats()
	if len(s.Upstreams) != 2 {
		t.Fatalf("Upstreams = %+v", s.Upstreams)
	}
	if got := s.Upstreams[0].Served + s.Upstreams[1].Served; got != total {
		t.Errorf("served %d, want %d", got, total)
	}
}

// Weights shape the spread: a weight-3 upstream must carry roughly three
// times the traffic of a weight-1 one (the ring walk is deterministic, so
// with 40 requests the split is exactly 30/10).
func TestFanoutHonorsWeights(t *testing.T) {
	engA, srvA := newFanoutEngine(t, "127.0.0.1:0")
	engB, srvB := newFanoutEngine(t, "127.0.0.1:0")
	p, err := New(Config{
		K:    1,
		Seed: 1,
		Engines: []EngineSpec{
			{Host: srvA.Addr(), Weight: 3},
			{Host: srvB.Addr(), Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()

	const total = 40
	for i := 0; i < total; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("weighted query %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := len(engA.QueryLog()), len(engB.QueryLog())
	if a != 30 || b != 10 {
		t.Errorf("weighted split = %d/%d, want 30/10", a, b)
	}
}

// One dead upstream: every request must still succeed via the live one,
// and after the breaker opens the dead upstream must cost nothing — its
// failure count stalls at the threshold instead of growing per request.
func TestFailoverAroundDeadUpstream(t *testing.T) {
	engLive, srvLive := newFanoutEngine(t, "127.0.0.1:0")
	dead := reservePort(t)
	const threshold = 2
	p, err := New(Config{
		K:    1,
		Seed: 1,
		Engines: []EngineSpec{
			{Host: dead},
			{Host: srvLive.Addr()},
		},
		UpstreamFailThreshold: threshold,
		UpstreamCooldown:      time.Hour, // never re-probe within the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()

	const total = 12
	for i := 0; i < total; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("failover query %d", i)); err != nil {
			t.Fatalf("query %d failed despite a live upstream: %v", i, err)
		}
	}
	if got := len(engLive.QueryLog()); got != total {
		t.Errorf("live engine saw %d queries, want %d", got, total)
	}
	s := p.Stats()
	var deadStats, liveStats UpstreamStats
	for _, u := range s.Upstreams {
		if u.Host == dead {
			deadStats = u
		} else {
			liveStats = u
		}
	}
	if deadStats.Failures != threshold {
		t.Errorf("dead upstream failures = %d, want exactly the threshold %d (breaker must stop the bleeding)",
			deadStats.Failures, threshold)
	}
	if !deadStats.CoolingDown {
		t.Error("dead upstream not reported as cooling down")
	}
	if deadStats.Served != 0 || liveStats.Served != total {
		t.Errorf("served split = %d/%d, want 0/%d", deadStats.Served, liveStats.Served, total)
	}
}

// With every upstream dead, requests must fail fast once the breakers are
// open — the cooldown error path, not a dial per request.
func TestAllUpstreamsDeadFailsFast(t *testing.T) {
	p, err := New(Config{
		K:                     1,
		Seed:                  1,
		Engines:               []EngineSpec{{Host: reservePort(t)}},
		UpstreamFailThreshold: 1,
		UpstreamCooldown:      time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()
	if _, err := p.ServeQuery(context.Background(), "first"); err == nil {
		t.Fatal("dead upstream produced results")
	}
	// Breaker is now open: the next request must not dial at all.
	ocallsBefore := p.encl.Stats().OCalls
	if _, err := p.ServeQuery(context.Background(), "second"); err == nil {
		t.Fatal("cooling-down upstream produced results")
	}
	if got := p.encl.Stats().OCalls - ocallsBefore; got != 0 {
		t.Errorf("fast-fail request still issued %d ocalls", got)
	}
}

// A revived upstream must rejoin the rotation after its cooldown: the
// breaker admits one probe, the probe succeeds, and traffic spreads again.
func TestBreakerReprobesAfterCooldown(t *testing.T) {
	_, srvLive := newFanoutEngine(t, "127.0.0.1:0")
	revivable := reservePort(t)
	const cooldown = 100 * time.Millisecond
	p, err := New(Config{
		K:    1,
		Seed: 1,
		Engines: []EngineSpec{
			{Host: revivable},
			{Host: srvLive.Addr()},
		},
		UpstreamFailThreshold: 1,
		UpstreamCooldown:      cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()

	// Trip the breaker on the not-yet-listening upstream.
	for i := 0; i < 4; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("warm query %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	tripped := false
	for _, u := range p.Stats().Upstreams {
		if u.Host == revivable && u.Failures > 0 {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("dead upstream never tried (rotation broken)")
	}

	// Revive it on the same address and wait out the cooldown.
	engRevived, _ := newFanoutEngine(t, revivable)
	time.Sleep(2 * cooldown)

	for i := 0; i < 8; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("recovery query %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(engRevived.QueryLog()); got == 0 {
		t.Error("revived upstream never re-probed after cooldown")
	}
}

// slowEngine is a hand-rolled HTTP engine that delays each response and
// counts round trips: the window that lets concurrent identical queries
// pile onto one flight deterministically.
type slowEngine struct {
	ln    net.Listener
	delay time.Duration
	hits  atomic.Int64
}

func newSlowEngine(t *testing.T, delay time.Duration) *slowEngine {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	se := &slowEngine{ln: ln, delay: delay}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				buf := make([]byte, 4096)
				if _, err := c.Read(buf); err != nil {
					return
				}
				se.hits.Add(1)
				time.Sleep(se.delay)
				body := `[{"url":"http://shared.example/a","title":"t","snippet":"s"}]`
				_, _ = fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s", len(body), body)
			}(conn)
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return se
}

// N concurrent identical original queries must trigger far fewer than N
// engine round trips, with the shared/led split accounting for all of
// them. The slow engine keeps the leader's flight open long enough for
// every concurrently-launched worker to join it.
func TestCoalescingCollapsesConcurrentIdenticalQueries(t *testing.T) {
	const workers = 16
	se := newSlowEngine(t, 50*time.Millisecond)
	p, err := New(Config{
		K:             1,
		Seed:          1,
		Engines:       []EngineSpec{{Host: se.ln.Addr().String()}},
		EnclaveConfig: enclave.Config{TCSCount: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.ServeQuery(context.Background(), "the one hot query"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := se.hits.Load(); got >= workers/2 {
		t.Errorf("%d concurrent identical queries cost %d round trips; coalescing should collapse most", workers, got)
	}
	s := p.Stats()
	if s.CoalesceShared == 0 {
		t.Error("no query shared a flight")
	}
	if s.CoalesceShared+s.CoalesceLed != workers {
		t.Errorf("coalesce accounting %d+%d != %d requests", s.CoalesceShared, s.CoalesceLed, workers)
	}
	if s.CoalesceRatio <= 0 {
		t.Errorf("coalesce ratio = %f", s.CoalesceRatio)
	}
}

// With coalescing disabled (the ablation baseline), every concurrent
// identical query must pay its own round trip.
func TestCoalescingDisabledFetchesPerRequest(t *testing.T) {
	const workers = 8
	se := newSlowEngine(t, 10*time.Millisecond)
	p, err := New(Config{
		K:                 1,
		Seed:              1,
		Engines:           []EngineSpec{{Host: se.ln.Addr().String()}},
		DisableCoalescing: true,
		EnclaveConfig:     enclave.Config{TCSCount: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.ServeQuery(context.Background(), "the one hot query"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := se.hits.Load(); got != workers {
		t.Errorf("coalescing disabled but %d round trips for %d requests", got, workers)
	}
	if s := p.Stats(); s.CoalesceShared != 0 || s.CoalesceLed != 0 {
		t.Errorf("disabled coalescing still counted: %+v", s)
	}
}

// A coalesced result must be charged to the EPC exactly once: after a
// storm of concurrent identical queries with the cache on, the enclave
// heap must equal history + cache + index exactly (the PR 1 invariant), and the
// cache must hold one entry.
func TestCoalescedResultChargedOnce(t *testing.T) {
	const workers = 16
	se := newSlowEngine(t, 30*time.Millisecond)
	p, err := New(Config{
		K:             1,
		Seed:          1,
		Engines:       []EngineSpec{{Host: se.ln.Addr().String()}},
		CacheBytes:    1 << 20,
		EnclaveConfig: enclave.Config{TCSCount: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.ServeQuery(context.Background(), "hot cached query"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.CacheB == 0 {
		t.Fatal("cache stored nothing")
	}
	if s.CacheLen != 1 {
		t.Errorf("cache holds %d entries for one distinct query", s.CacheLen)
	}
	if s.Enclave.HeapBytes != s.HistoryB+s.CacheB+s.IndexB {
		t.Errorf("heap %d != history %d + cache %d (coalesced result double- or under-charged)",
			s.Enclave.HeapBytes, s.HistoryB, s.CacheB)
	}
}

// Race coverage: single-flight waiters, session churn, and fan-out all at
// once. Secure queries reuse a small set of identical query strings so
// flights constantly form and land while the session table evicts FIFO
// under -race.
func TestConcurrentCoalescingWithSessionChurn(t *testing.T) {
	_, srvA := newFanoutEngine(t, "127.0.0.1:0")
	_, srvB := newFanoutEngine(t, "127.0.0.1:0")
	p, err := New(Config{
		K:    1,
		Seed: 1,
		Engines: []EngineSpec{
			{Host: srvA.Addr()},
			{Host: srvB.Addr()},
		},
		MaxSessions:   4,
		EnclaveConfig: enclave.Config{TCSCount: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(2)
		// Plain-path workers: identical queries, maximal flight contention.
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("churn hot %d", i%3)); err != nil {
					errs <- fmt.Errorf("plain worker %d: %w", w, err)
					return
				}
			}
		}(w)
		// Secure-path workers: handshakes churn the session table while
		// their queries join the same flights.
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				channel, session, err := churnClient(p)
				if err != nil {
					errs <- fmt.Errorf("handshake worker %d: %w", w, err)
					return
				}
				pt, err := json.Marshal(secureRequest{Query: fmt.Sprintf("churn hot %d", i%3)})
				if err != nil {
					errs <- err
					return
				}
				record, err := channel.Seal(pt)
				if err != nil {
					errs <- err
					return
				}
				// Evicted sessions fail with "unknown session"; that is
				// churn working, not a test failure.
				_, _ = p.ecall(context.Background(), envelope{
					Type:    typeSecure,
					Session: session,
					Record:  record,
				})
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := p.Stats()
	if s.CoalesceShared+s.CoalesceLed == 0 {
		t.Error("no engine-bound request was accounted by the flight group")
	}
}

// The legacy single-engine options remain supported sugar, and mixing
// them inconsistently with the new set API is a loud error.
func TestLegacyEngineOptionsShim(t *testing.T) {
	if _, err := New(Config{
		K:          1,
		EngineHost: "127.0.0.1:1",
		Engines:    []EngineSpec{{Host: "127.0.0.1:2"}},
	}); err == nil {
		t.Error("disagreeing EngineHost and Engines accepted")
	}
	if _, err := New(Config{
		K:             1,
		EngineCertPEM: []byte("irrelevant"),
		Engines:       []EngineSpec{{Host: "127.0.0.1:2"}},
	}); err == nil {
		t.Error("EngineCertPEM alongside Engines accepted")
	}
	// Agreeing legacy + new config is redundant but allowed.
	p, err := New(Config{
		K:          1,
		EngineHost: "127.0.0.1:9",
		Engines:    []EngineSpec{{Host: "127.0.0.1:9"}},
	})
	if err != nil {
		t.Fatalf("agreeing legacy+new rejected: %v", err)
	}
	p.encl.Destroy()
	// Legacy alone builds a one-element upstream set.
	p, err = New(Config{K: 1, EngineHost: "127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()
	if s := p.Stats(); len(s.Upstreams) != 1 || s.Upstreams[0].Host != "127.0.0.1:9" {
		t.Errorf("legacy shim upstreams = %+v", s.Upstreams)
	}
}

// Upstream-set validation: duplicates, missing ports, negative weights.
func TestEngineSpecValidation(t *testing.T) {
	for name, engines := range map[string][]EngineSpec{
		"duplicate hosts": {{Host: "127.0.0.1:9"}, {Host: "127.0.0.1:9"}},
		"missing port":    {{Host: "localhost"}},
		"empty host":      {{Host: ""}},
		"negative weight": {{Host: "127.0.0.1:9", Weight: -1}},
	} {
		if _, err := New(Config{K: 1, Engines: engines}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
