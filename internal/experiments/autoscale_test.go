package experiments

import (
	"testing"
	"time"
)

func TestRunAutoscaleValidation(t *testing.T) {
	if _, err := RunAutoscale(AutoscaleConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunAutoscale(AutoscaleConfig{MinShards: 3, MaxShards: 1, Workers: 4, PeakWindow: time.Second}); err == nil {
		t.Error("inverted shard range accepted")
	}
}

// The acceptance bar of the elasticity layer: under peak load the fleet
// must traverse the whole ramp (min→max and back), lose zero requests
// across every spawn/drain/retire event, and keep the EPC invariant green
// on both sides of each sealed handoff. Throughput ratios are reported,
// not asserted — loaded CI machines make absolute lines noisy, and the
// zero-loss/shape claims are the correctness bar.
func TestRunAutoscaleRampHoldsAllRequests(t *testing.T) {
	cfg := DefaultAutoscaleConfig()
	cfg.MaxShards = 2
	cfg.Workers = 8
	cfg.PeakWindow = 300 * time.Millisecond
	if raceEnabled {
		cfg.PeakWindow = 200 * time.Millisecond
	}
	res, err := RunAutoscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakShards != cfg.MaxShards {
		t.Errorf("peak shards = %d, want %d", res.PeakShards, cfg.MaxShards)
	}
	if res.FinalShards != cfg.MinShards {
		t.Errorf("final shards = %d, want %d", res.FinalShards, cfg.MinShards)
	}
	if res.Lost != 0 {
		t.Errorf("%d of %d requests lost across scale events", res.Lost, res.Issued)
	}
	if res.ScaleUps == 0 || res.ScaleDowns == 0 {
		t.Errorf("scale events missing: ups=%d downs=%d", res.ScaleUps, res.ScaleDowns)
	}
	if !res.InvariantOK {
		t.Error("EPC invariant broken across a sealed scale-down handoff")
	}
	if res.ElasticPeakRPS <= 0 || res.StaticPeakRPS <= 0 {
		t.Errorf("no throughput measured: elastic=%.0f static=%.0f", res.ElasticPeakRPS, res.StaticPeakRPS)
	}
}
