package dataset

// Topic is a coherent interest area from which user queries are drawn. The
// vocabulary below plays the role of the AOL log's topical structure: users
// are assigned a small mixture of topics and phrase their queries from the
// corresponding word pools, which is the property SimAttack exploits (user
// histories are topically coherent and partially overlapping).
type Topic struct {
	Name  string
	Words []string
}

// Topics is the built-in topic vocabulary: 40 areas x ~24 words.
var Topics = []Topic{
	{"health", []string{"symptoms", "diabetes", "blood", "pressure", "cholesterol", "migraine", "allergy", "asthma", "vitamin", "thyroid", "arthritis", "insomnia", "anxiety", "depression", "pregnancy", "flu", "vaccine", "infection", "rash", "headache", "nutrition", "diet", "doctor", "clinic"}},
	{"finance", []string{"mortgage", "refinance", "loan", "credit", "score", "interest", "rates", "savings", "checking", "account", "broker", "stocks", "dividend", "mutual", "funds", "retirement", "pension", "budget", "debt", "bankruptcy", "taxes", "deduction", "audit", "insurance"}},
	{"sports", []string{"football", "baseball", "basketball", "playoffs", "scores", "standings", "roster", "draft", "trade", "coach", "stadium", "tickets", "league", "championship", "tournament", "golf", "tennis", "soccer", "hockey", "nascar", "olympics", "marathon", "workout", "fitness"}},
	{"travel", []string{"flights", "airfare", "hotel", "resort", "vacation", "cruise", "package", "rental", "airport", "passport", "visa", "itinerary", "beach", "island", "paris", "london", "hawaii", "orlando", "disney", "backpacking", "hostel", "luggage", "tours", "sightseeing"}},
	{"cooking", []string{"recipe", "chicken", "casserole", "baking", "oven", "grill", "marinade", "sauce", "pasta", "lasagna", "dessert", "chocolate", "cookies", "bread", "sourdough", "slow", "cooker", "crockpot", "vegetarian", "salad", "soup", "seasoning", "ingredients", "dinner"}},
	{"automotive", []string{"car", "truck", "dealer", "used", "lease", "sedan", "engine", "transmission", "brakes", "tires", "oil", "change", "mileage", "hybrid", "horsepower", "warranty", "recall", "bluebook", "trade", "mechanic", "repair", "parts", "muffler", "battery"}},
	{"music", []string{"lyrics", "album", "band", "concert", "tour", "guitar", "piano", "chords", "sheet", "playlist", "song", "singer", "rock", "country", "jazz", "hip", "hop", "karaoke", "festival", "vinyl", "acoustic", "drummer", "orchestra", "soundtrack"}},
	{"movies", []string{"movie", "showtimes", "theater", "trailer", "actor", "actress", "director", "oscar", "review", "rating", "sequel", "dvd", "rental", "premiere", "comedy", "thriller", "horror", "animation", "documentary", "screenplay", "casting", "boxoffice", "cinema", "film"}},
	{"gardening", []string{"garden", "plants", "seeds", "perennial", "annual", "roses", "tomatoes", "compost", "mulch", "fertilizer", "pruning", "landscaping", "lawn", "weed", "soil", "greenhouse", "herbs", "shrubs", "bulbs", "transplant", "watering", "hedge", "orchid", "vegetable"}},
	{"law", []string{"attorney", "lawyer", "lawsuit", "divorce", "custody", "settlement", "court", "judge", "statute", "liability", "contract", "notary", "will", "probate", "estate", "felony", "misdemeanor", "bail", "appeal", "deposition", "paralegal", "litigation", "damages", "plaintiff"}},
	{"realestate", []string{"homes", "sale", "realtor", "listing", "foreclosure", "appraisal", "closing", "escrow", "inspection", "condo", "townhouse", "apartment", "rent", "landlord", "tenant", "deed", "zoning", "acreage", "property", "neighborhood", "schools", "commute", "downpayment", "equity"}},
	{"technology", []string{"computer", "laptop", "desktop", "monitor", "printer", "wireless", "router", "broadband", "software", "download", "antivirus", "spyware", "firewall", "upgrade", "memory", "processor", "keyboard", "driver", "install", "backup", "email", "browser", "password", "website"}},
	{"fashion", []string{"dress", "shoes", "handbag", "jeans", "designer", "boutique", "outfit", "jewelry", "necklace", "earrings", "makeup", "lipstick", "mascara", "perfume", "hairstyle", "salon", "manicure", "trends", "runway", "model", "accessories", "scarf", "sunglasses", "boots"}},
	{"parenting", []string{"baby", "toddler", "newborn", "diaper", "stroller", "crib", "daycare", "preschool", "homework", "allowance", "chores", "discipline", "tantrum", "potty", "training", "teething", "formula", "breastfeeding", "pediatrician", "milestones", "playdate", "babysitter", "adoption", "twins"}},
	{"pets", []string{"dog", "puppy", "cat", "kitten", "breed", "groomer", "veterinarian", "kennel", "leash", "litter", "aquarium", "goldfish", "hamster", "parrot", "rabbit", "training", "obedience", "shelter", "adoption", "fleas", "heartworm", "pedigree", "terrier", "retriever"}},
	{"education", []string{"college", "university", "tuition", "scholarship", "financial", "aid", "degree", "diploma", "transcript", "admissions", "campus", "dormitory", "professor", "syllabus", "semester", "major", "graduate", "undergraduate", "sat", "gpa", "online", "courses", "textbooks", "alumni"}},
	{"jobs", []string{"resume", "interview", "salary", "career", "employer", "hiring", "openings", "application", "recruiter", "benefits", "promotion", "layoff", "unemployment", "severance", "internship", "parttime", "fulltime", "overtime", "workplace", "manager", "references", "cover", "letter", "negotiation"}},
	{"weather", []string{"forecast", "radar", "hurricane", "tornado", "storm", "rainfall", "snowfall", "blizzard", "temperature", "humidity", "barometer", "frost", "drought", "flood", "lightning", "thunder", "heatwave", "windchill", "climate", "seasonal", "precipitation", "warning", "advisory", "satellite"}},
	{"history", []string{"history", "civil", "war", "revolution", "ancient", "rome", "egypt", "medieval", "renaissance", "colonial", "independence", "constitution", "president", "dynasty", "empire", "archaeology", "artifacts", "museum", "timeline", "biography", "holocaust", "pioneers", "treaty", "monarchy"}},
	{"science", []string{"physics", "chemistry", "biology", "astronomy", "planets", "telescope", "molecule", "atom", "element", "periodic", "evolution", "genetics", "dna", "experiment", "laboratory", "theory", "quantum", "gravity", "ecosystem", "photosynthesis", "geology", "fossil", "microscope", "neuron"}},
	{"religion", []string{"church", "bible", "scripture", "prayer", "sermon", "pastor", "worship", "gospel", "faith", "christian", "catholic", "protestant", "baptist", "synagogue", "torah", "mosque", "quran", "buddhist", "meditation", "spiritual", "hymn", "verse", "parish", "missionary"}},
	{"politics", []string{"election", "senator", "congress", "governor", "campaign", "ballot", "candidate", "primary", "debate", "policy", "legislation", "veto", "amendment", "lobbyist", "democrat", "republican", "liberal", "conservative", "poll", "approval", "immigration", "healthcare", "reform", "budget"}},
	{"celebrities", []string{"celebrity", "gossip", "paparazzi", "tabloid", "scandal", "engagement", "wedding", "divorce", "redcarpet", "interview", "hollywood", "famous", "star", "singer", "heiress", "supermodel", "tvhost", "breakup", "rehab", "mansion", "yacht", "entourage", "publicist", "autograph"}},
	{"games", []string{"cheats", "walkthrough", "playstation", "xbox", "nintendo", "console", "multiplayer", "arcade", "puzzle", "sudoku", "crossword", "poker", "blackjack", "casino", "solitaire", "chess", "checkers", "bingo", "trivia", "scrabble", "dice", "strategy", "roleplaying", "simulation"}},
	{"diy", []string{"plumbing", "faucet", "drywall", "paint", "primer", "hardwood", "flooring", "tile", "grout", "cabinet", "countertop", "remodel", "renovation", "insulation", "gutter", "roofing", "shingles", "deck", "fence", "toolbox", "cordless", "drill", "sander", "workbench"}},
	{"shopping", []string{"coupon", "discount", "clearance", "outlet", "bargain", "rebate", "shipping", "catalog", "wholesale", "auction", "bid", "marketplace", "storefront", "giftcard", "registry", "layaway", "refund", "exchange", "warranty", "pricematch", "deals", "promo", "voucher", "checkout"}},
	{"photography", []string{"camera", "digital", "lens", "zoom", "tripod", "shutter", "aperture", "exposure", "megapixel", "portrait", "landscape", "darkroom", "negatives", "prints", "framing", "photoshop", "editing", "filters", "lighting", "studio", "wedding", "photographer", "album", "slideshow"}},
	{"fishing", []string{"fishing", "bait", "tackle", "lure", "rod", "reel", "bass", "trout", "salmon", "catfish", "walleye", "fly", "charter", "lake", "river", "pond", "boat", "kayak", "license", "limit", "hook", "sinker", "bobber", "spawn"}},
	{"hunting", []string{"hunting", "deer", "elk", "turkey", "duck", "season", "rifle", "shotgun", "bow", "arrow", "camouflage", "blind", "stand", "scent", "decoy", "caliber", "ammunition", "scope", "taxidermy", "antler", "tracking", "wilderness", "permit", "gamewarden"}},
	{"crafts", []string{"knitting", "crochet", "yarn", "quilting", "fabric", "sewing", "pattern", "embroidery", "scrapbook", "stamps", "beads", "jewelry", "pottery", "ceramics", "woodworking", "carving", "origami", "stencil", "glue", "canvas", "easel", "watercolor", "sketch", "mosaic"}},
	{"astrology", []string{"horoscope", "zodiac", "aries", "taurus", "gemini", "scorpio", "sagittarius", "capricorn", "aquarius", "pisces", "libra", "virgo", "compatibility", "tarot", "psychic", "numerology", "palmistry", "birthchart", "retrograde", "fullmoon", "eclipse", "crystals", "aura", "medium"}},
	{"weddings", []string{"wedding", "bride", "groom", "engagement", "ring", "venue", "reception", "caterer", "florist", "bouquet", "invitations", "registry", "bridesmaid", "tuxedo", "honeymoon", "anniversary", "vows", "officiant", "centerpiece", "photographer", "banquet", "toast", "veil", "gown"}},
	{"genealogy", []string{"genealogy", "ancestry", "surname", "census", "immigration", "naturalization", "birthrecord", "obituary", "cemetery", "headstone", "familytree", "lineage", "descendants", "heritage", "archives", "parish", "records", "maiden", "name", "pedigree", "homestead", "passenger", "manifest", "ellis"}},
	{"insurance", []string{"insurance", "premium", "deductible", "claim", "adjuster", "coverage", "policy", "liability", "collision", "comprehensive", "homeowners", "renters", "term", "life", "annuity", "beneficiary", "underwriting", "quote", "actuary", "copay", "network", "provider", "medicare", "medicaid"}},
	{"fitness", []string{"gym", "treadmill", "elliptical", "dumbbell", "barbell", "yoga", "pilates", "aerobics", "cardio", "protein", "supplement", "creatine", "calories", "metabolism", "trainer", "membership", "stretching", "marathon", "triathlon", "cycling", "swimming", "abs", "squats", "pushups"}},
	{"electronics", []string{"television", "plasma", "lcd", "stereo", "speakers", "subwoofer", "amplifier", "headphones", "mp3", "player", "ipod", "camcorder", "dvd", "bluray", "remote", "cables", "hdmi", "antenna", "satellite", "receiver", "surround", "projector", "turntable", "walkman"}},
	{"books", []string{"novel", "paperback", "hardcover", "author", "bestseller", "mystery", "romance", "fantasy", "biography", "memoir", "bookclub", "library", "chapter", "sequel", "trilogy", "publisher", "manuscript", "audiobook", "bookstore", "poetry", "anthology", "fiction", "nonfiction", "literature"}},
	{"boating", []string{"boat", "sailboat", "pontoon", "yacht", "marina", "dock", "mooring", "anchor", "hull", "outboard", "motor", "propeller", "navigation", "chartplotter", "lifejacket", "regatta", "sailing", "cruising", "trailer", "winterize", "fiberglass", "deckhand", "knots", "harbor"}},
	{"camping", []string{"camping", "tent", "sleeping", "bag", "campground", "campfire", "lantern", "backpack", "hiking", "trail", "compass", "canteen", "firewood", "marshmallow", "rv", "camper", "wilderness", "ranger", "reservation", "propane", "stove", "cooler", "bugspray", "binoculars"}},
	{"taxes", []string{"irs", "refund", "filing", "extension", "withholding", "exemption", "dependent", "deduction", "itemized", "standard", "w2", "1099", "schedule", "capital", "gains", "estimated", "quarterly", "accountant", "cpa", "audit", "amended", "return", "taxable", "bracket"}},
}

// GeneralWords are query qualifiers common across all users; they appear in
// real logs regardless of topic ("free download", "best price", "how to").
var GeneralWords = []string{
	"free", "best", "cheap", "new", "top", "online", "find", "buy",
	"compare", "reviews", "pictures", "guide", "help", "info", "local",
	"near", "home", "official", "sale", "2006", "list", "how",
}

// NewsWords is the vocabulary of the simulated RSS/news feeds used by the
// TrackMeNot substitute. It is mostly disjoint from the topical query
// vocabulary, which reproduces the paper's Figure 1 observation that
// RSS-derived fake queries look nothing like real user queries.
var NewsWords = []string{
	"parliament", "diplomat", "sanctions", "ceasefire", "insurgency",
	"pandemic", "summit", "communique", "referendum", "coalition",
	"austerity", "inflation", "deficit", "embargo", "tariff",
	"extradition", "indictment", "subpoena", "testimony", "impeachment",
	"envoy", "consulate", "ambassador", "treaty", "accord",
	"peacekeeping", "militia", "warlord", "junta", "coup",
	"dissident", "asylum", "refugee", "genocide", "tribunal",
	"oligarch", "magnate", "conglomerate", "merger", "acquisition",
	"bailout", "stimulus", "regulator", "watchdog", "whistleblower",
	"espionage", "surveillance", "encryption", "malware", "botnet",
	"epidemic", "quarantine", "outbreak", "contagion", "antiviral",
	"seismic", "aftershock", "epicenter", "tsunami", "evacuation",
}

// DictionaryWords is the keyword dictionary the GooPIR substitute samples
// from: a broad mixed pool, the way GooPIR used a general dictionary
// rather than user-derived terms.
var DictionaryWords = []string{
	"abacus", "bazaar", "cascade", "dirigible", "ebony", "fulcrum",
	"gazebo", "harbinger", "isthmus", "juggernaut", "kaleidoscope",
	"labyrinth", "mandolin", "nebula", "obelisk", "palindrome",
	"quarry", "rhapsody", "sonnet", "tundra", "umbrella", "vortex",
	"walnut", "xylophone", "yearling", "zephyr", "almanac", "brocade",
	"citadel", "dulcimer", "eiderdown", "filament", "gondola",
	"hacienda", "ingot", "jamboree", "kiln", "lagoon", "marzipan",
	"nimbus", "oracle", "parapet", "quiver", "rotunda", "sextant",
	"terrace", "urn", "vellum", "wharf", "yoke",
}

// DomainSuffixes builds plausible URLs for clicks and corpus documents.
var DomainSuffixes = []string{
	"central", "hub", "world", "zone", "depot", "guide", "source",
	"place", "spot", "net",
}

// TopicByName returns the topic with the given name, or nil.
func TopicByName(name string) *Topic {
	for i := range Topics {
		if Topics[i].Name == name {
			return &Topics[i]
		}
	}
	return nil
}

// VocabularySize returns the total number of distinct topic words, exposed
// for tests and documentation.
func VocabularySize() int {
	seen := map[string]struct{}{}
	for _, t := range Topics {
		for _, w := range t.Words {
			seen[w] = struct{}{}
		}
	}
	return len(seen)
}
