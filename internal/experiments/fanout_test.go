package experiments

import (
	"testing"
	"time"
)

func TestRunFanoutValidation(t *testing.T) {
	if _, err := RunFanout(FanoutConfig{CoalesceWorkers: 0, FailoverWorkers: 1}); err == nil {
		t.Error("zero coalesce workers accepted")
	}
	if _, err := RunFanout(FanoutConfig{CoalesceWorkers: 1, FailoverWorkers: 0}); err == nil {
		t.Error("zero failover workers accepted")
	}
}

// The acceptance bar of the upstream-set redesign: coalescing must at
// least double throughput on a concurrent identical-query workload
// against a capacity-limited engine (measured ~15x on loopback; 2x keeps
// the test robust on loaded CI machines), failover must hold every
// request through a dead upstream, and the revived upstream must take
// traffic again after the breaker re-probes.
func TestRunFanoutDemonstratesScaling(t *testing.T) {
	res, err := RunFanout(FanoutConfig{
		CoalesceWorkers:  16,
		CoalesceRequests: 6,
		EngineService:    2 * time.Millisecond,
		FailoverWorkers:  8,
		FailoverRequests: 80,
		Cooldown:         100 * time.Millisecond,
		FailThreshold:    1,
		DocsPerTopic:     10,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoalesceSpeedup < 2 {
		t.Errorf("coalescing speedup %.1fx below the 2x acceptance floor (%.0f vs %.0f rps)",
			res.CoalesceSpeedup, res.CoalesceRPS, res.CoalesceBaselineRPS)
	}
	if res.EngineTripsCoalesce >= res.EngineTripsBaseline {
		t.Errorf("coalescing did not reduce engine round trips: %d vs %d",
			res.EngineTripsCoalesce, res.EngineTripsBaseline)
	}
	if res.CoalesceRatio <= 0 {
		t.Error("no request shared a flight")
	}
	if res.DegradedErrors != 0 {
		t.Errorf("%d requests failed while one upstream was dead (failover must hold them all)",
			res.DegradedErrors)
	}
	if res.HealthyShareA == 0 || res.HealthyShareB == 0 {
		t.Errorf("healthy phase left an upstream idle: %.2f/%.2f",
			res.HealthyShareA, res.HealthyShareB)
	}
	if res.DegradedRPS < res.HealthyRPS/4 {
		t.Errorf("degraded throughput %.0f collapsed vs healthy %.0f (per-request stalls?)",
			res.DegradedRPS, res.HealthyRPS)
	}
	if res.RevivedServed == 0 {
		t.Error("revived upstream took no traffic after the breaker cooldown")
	}
}
