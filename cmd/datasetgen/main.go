// Command datasetgen emits a synthetic AOL-format query log (AnonID,
// Query, QueryTime, ItemRank, ClickURL) with Zipfian user activity and
// topically coherent per-user histories — the redistributable stand-in for
// the AOL dataset the paper evaluates on.
package main

import (
	"flag"
	"fmt"
	"os"

	"xsearch/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		users   = flag.Int("users", 200, "number of users")
		queries = flag.Int("queries", 400, "mean queries of the most active user")
		topics  = flag.Int("topics", 3, "topics per user")
		seed    = flag.Uint64("seed", 1, "generation seed")
		out     = flag.String("out", "-", "output file (- for stdout)")
	)
	flag.Parse()

	cfg := dataset.DefaultGeneratorConfig()
	cfg.Users = *users
	cfg.MeanQueries = *queries
	cfg.TopicsPerUser = *topics
	cfg.Seed = *seed
	gen, err := dataset.NewGenerator(cfg)
	if err != nil {
		return err
	}
	log := gen.Generate()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "datasetgen: close:", cerr)
			}
		}()
		w = f
	}
	if err := log.WriteTSV(w); err != nil {
		return err
	}
	stats := log.Stats()
	fmt.Fprintf(os.Stderr, "wrote %d records, %d users, %d unique queries, window %s .. %s\n",
		stats.Records, stats.Users, stats.UniqueQueries,
		stats.Start.Format("2006-01-02"), stats.End.Format("2006-01-02"))
	return nil
}
