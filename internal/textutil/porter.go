package textutil

// Stem applies the Porter stemming algorithm (Porter, 1980) to a lowercase
// ASCII word. Words shorter than three characters are returned unchanged,
// matching the reference implementation. Non-ASCII input is returned as-is.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] >= 0x80 {
			return word
		}
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isConsonant reports whether w[i] is a consonant in Porter's sense: a letter
// other than a, e, i, o, u, and other than y preceded by a consonant.
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	}
	return true
}

// measure computes m, the number of VC (vowel-consonant) sequences in w
// viewed as [C](VC)^m[V].
func measure(w []byte) int {
	n, i := 0, 0
	// Skip initial consonants.
	for i < len(w) && isConsonant(w, i) {
		i++
	}
	for {
		// Skip vowels.
		for i < len(w) && !isConsonant(w, i) {
			i++
		}
		if i >= len(w) {
			return n
		}
		// Skip consonants: one full VC sequence observed.
		for i < len(w) && isConsonant(w, i) {
			i++
		}
		n++
	}
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether w ends with two identical consonants.
func endsDoubleConsonant(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isConsonant(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y. Used to decide whether to restore a final 'e'.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isConsonant(w, n-3) || isConsonant(w, n-2) || !isConsonant(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r when the stem before s has
// measure > m. Returns the new word and whether a replacement happened
// (i.e. the suffix matched, regardless of the measure condition).
func replaceSuffix(w []byte, s, r string, m int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stem := w[:len(w)-len(s)]
	if measure(stem) > m {
		return append(stem, r...), true
	}
	return w, true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	cleanup := false
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		w = w[:len(w)-2]
		cleanup = true
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		w = w[:len(w)-3]
		cleanup = true
	}
	if !cleanup {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleConsonant(w):
		last := w[len(w)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return w[:len(w)-1]
		}
	case measure(w) == 1 && endsCVC(w):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
	{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
	{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
	{"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if hasSuffix(w, r.from) {
			w, _ = replaceSuffix(w, r.from, r.to, 0)
			return w
		}
	}
	return w
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
	{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if hasSuffix(w, r.from) {
			w, _ = replaceSuffix(w, r.from, r.to, 0)
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if s == "ion" {
			// "ion" only strips when the stem ends in s or t.
			if len(stem) == 0 {
				return w
			}
			last := stem[len(stem)-1]
			if last != 's' && last != 't' {
				return w
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleConsonant(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
