package experiments

import (
	"context"
	"fmt"
	"time"

	"xsearch/internal/enclave"
	"xsearch/internal/metrics"
	"xsearch/internal/proxy"
)

// BatchConfig sizes the ecall-batching ablation. The measured claim: when
// enclave transitions carry a real cost (EENTER/EEXIT spin) and TCS slots
// are scarce, the per-request boundary crossings — one request ecall and
// one resume ecall per query — become the hot path's fixed tax, and
// vectorizing them through the group-commit batcher divides that tax by
// the batch occupancy. The ablation drives an identical concurrent
// workload through the unbatched async pipeline and then through the
// batched seam at increasing BatchMax, recording the throughput/latency
// curve that trades batching window against transition amortization.
type BatchConfig struct {
	// Workers concurrent clients issue Requests distinct queries per run.
	Workers  int
	Requests int
	// EngineService is the loopback engine's per-request latency (applied
	// concurrently; the proxy, not the engine, is the system under test).
	EngineService time.Duration
	// TCSCount bounds concurrent ecalls and TransitionCost prices each
	// boundary crossing — together they make transitions the contended
	// resource batching amortizes.
	TCSCount       int
	TransitionCost time.Duration
	// PipelineDepth is the async admission bound (shared by every run).
	PipelineDepth int
	// BatchWindow is the group-commit fill window for the batched runs
	// (zero uses the proxy default). The ablation widens it past the
	// default: on few cores the closed-loop workers wake staggered, and a
	// window shorter than their wake spacing degenerates every batch to a
	// singleton.
	BatchWindow time.Duration
	// BatchSizes is the BatchMax sweep; each must be >= 2 and <=
	// PipelineDepth.
	BatchSizes []int
	// DocsPerTopic sizes the engine corpus; Seed fixes randomness.
	DocsPerTopic int
	Seed         uint64
}

// DefaultBatchConfig is the full-size ablation.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{
		Workers:        32,
		Requests:       800,
		EngineService:  time.Millisecond,
		TCSCount:       2,
		TransitionCost: 200 * time.Microsecond,
		PipelineDepth:  64,
		BatchWindow:    2 * time.Millisecond,
		BatchSizes:     []int{2, 4, 8, 16, 32},
		DocsPerTopic:   20,
		Seed:           1,
	}
}

// BatchPoint is one point of the batch-size/latency curve.
type BatchPoint struct {
	BatchMax float64
	RPS      float64
	// Speedup is RPS over the unbatched async baseline.
	Speedup float64
	// Request latency percentiles — the cost side of the trade: deeper
	// batches amortize more transitions but hold early arrivals for the
	// window.
	P50 time.Duration
	P95 time.Duration
	// Request-batch occupancy percentiles from the proxy's own gauges:
	// how full the batches actually ran at this load.
	OccupancyP50 float64
	OccupancyP95 float64
}

// BatchResult carries the ablation's measurements.
type BatchResult struct {
	// UnbatchedRPS is the async-pipeline baseline at the same TCS count
	// and transition cost, with batching off.
	UnbatchedRPS float64
	UnbatchedP50 time.Duration
	UnbatchedP95 time.Duration
	// Curve is one point per configured BatchMax.
	Curve []BatchPoint
	// BestSpeedup is the curve's best throughput gain over the baseline.
	BestSpeedup float64
	// InvariantOK reports heap == history + cache + index after every run.
	InvariantOK bool
}

// RunBatch measures the batched ecall seam against the unbatched async
// pipeline.
func RunBatch(cfg BatchConfig) (*BatchResult, error) {
	if cfg.Workers <= 0 || cfg.Requests <= 0 || len(cfg.BatchSizes) == 0 {
		return nil, fmt.Errorf("batch: need workers, requests and a BatchMax sweep")
	}
	srv, err := pipelineEngine(PipelineConfig{
		DocsPerTopic: cfg.DocsPerTopic,
		Seed:         cfg.Seed,
	}, cfg.EngineService)
	if err != nil {
		return nil, err
	}
	defer shutdownServer(srv)

	res := &BatchResult{InvariantOK: true}
	runOne := func(batchMax int) (rps float64, p50, p95 time.Duration, occ50, occ95 float64, err error) {
		pc := proxy.Config{
			K:             2,
			Engines:       []proxy.EngineSpec{{Host: srv.Addr()}},
			Seed:          cfg.Seed,
			AsyncOcalls:   true,
			PipelineDepth: cfg.PipelineDepth,
			BatchMax:      batchMax,
			EnclaveConfig: enclave.Config{
				TCSCount:       cfg.TCSCount,
				TransitionCost: cfg.TransitionCost,
			},
		}
		if batchMax > 0 {
			pc.BatchWindow = cfg.BatchWindow
		}
		p, err := proxy.New(pc)
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		defer shutdownProxy(p)
		// Warm the history so obfuscation has fakes to draw.
		for i := 0; i < 4; i++ {
			if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("batch warm %d", i)); err != nil {
				return 0, 0, 0, 0, 0, err
			}
		}
		hist := metrics.NewHistogram()
		label := fmt.Sprintf("batch%d", batchMax)
		elapsed, err := drivePipeline(p, cfg.Workers, cfg.Requests, label, hist)
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		snap := hist.Snapshot()
		st := p.Stats()
		res.InvariantOK = res.InvariantOK && proxyInvariantOK(p)
		return float64(cfg.Requests) / elapsed.Seconds(), snap.P50, snap.P95,
			st.BatchOccupancyP50, st.BatchOccupancyP95, nil
	}

	rps, p50, p95, _, _, err := runOne(0) // unbatched async baseline
	if err != nil {
		return nil, fmt.Errorf("batch baseline: %w", err)
	}
	res.UnbatchedRPS, res.UnbatchedP50, res.UnbatchedP95 = rps, p50, p95

	for _, size := range cfg.BatchSizes {
		rps, p50, p95, occ50, occ95, err := runOne(size)
		if err != nil {
			return nil, fmt.Errorf("batch max %d: %w", size, err)
		}
		pt := BatchPoint{
			BatchMax:     float64(size),
			RPS:          rps,
			P50:          p50,
			P95:          p95,
			OccupancyP50: occ50,
			OccupancyP95: occ95,
		}
		if res.UnbatchedRPS > 0 {
			pt.Speedup = rps / res.UnbatchedRPS
		}
		if pt.Speedup > res.BestSpeedup {
			res.BestSpeedup = pt.Speedup
		}
		res.Curve = append(res.Curve, pt)
	}
	return res, nil
}
