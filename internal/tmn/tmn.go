// Package tmn implements the TrackMeNot baseline (Howe & Nissenbaum):
// a client-side agent that periodically emits fake queries drawn from RSS
// news feeds, independent of the user's real queries. The paper's Figure 1
// shows why this fails: RSS vocabulary is so different from real query
// vocabulary that fakes are trivially distinguishable. The package
// simulates the RSS feeds with a seeded headline generator over a news
// vocabulary disjoint from the query topics.
package tmn

import (
	"context"
	"fmt"
	mrand "math/rand/v2"
	"strings"
	"sync"
	"time"

	"xsearch/internal/dataset"
)

// Feed simulates an RSS news feed: a rolling set of headlines.
type Feed struct {
	mu        sync.Mutex
	rng       *mrand.Rand
	headlines []string
}

// NewFeed generates numHeadlines synthetic headlines from the news
// vocabulary, seeded for reproducibility.
func NewFeed(numHeadlines int, seed uint64) (*Feed, error) {
	if numHeadlines <= 0 {
		return nil, fmt.Errorf("tmn: numHeadlines must be positive, got %d", numHeadlines)
	}
	f := &Feed{rng: mrand.New(mrand.NewPCG(seed, seed^0x6a09e667f3bcc909))}
	f.headlines = make([]string, numHeadlines)
	for i := range f.headlines {
		f.headlines[i] = f.headline()
	}
	return f, nil
}

// headline builds one synthetic news headline (4-8 news-vocabulary words).
func (f *Feed) headline() string {
	n := 4 + f.rng.IntN(5)
	words := make([]string, n)
	for i := range words {
		words[i] = dataset.NewsWords[f.rng.IntN(len(dataset.NewsWords))]
	}
	return strings.Join(words, " ")
}

// Headlines returns the current feed contents.
func (f *Feed) Headlines() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.headlines))
	copy(out, f.headlines)
	return out
}

// Refresh replaces a fraction of headlines, simulating feed churn.
func (f *Feed) Refresh(fraction float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := int(float64(len(f.headlines)) * fraction)
	for i := 0; i < n; i++ {
		f.headlines[f.rng.IntN(len(f.headlines))] = f.headline()
	}
}

// Generator produces TrackMeNot-style fake queries from a feed.
type Generator struct {
	feed *Feed

	mu  sync.Mutex
	rng *mrand.Rand
}

// NewGenerator wraps a feed with a seeded sampler.
func NewGenerator(feed *Feed, seed uint64) *Generator {
	return &Generator{
		feed: feed,
		rng:  mrand.New(mrand.NewPCG(seed, seed^0xbb67ae8584caa73b)),
	}
}

// FakeQuery extracts 1-3 consecutive words from a random headline, the way
// TrackMeNot seeds queries from RSS items.
func (g *Generator) FakeQuery() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	headlines := g.feed.Headlines()
	h := headlines[g.rng.IntN(len(headlines))]
	words := strings.Fields(h)
	n := 1 + g.rng.IntN(3)
	if n > len(words) {
		n = len(words)
	}
	start := g.rng.IntN(len(words) - n + 1)
	return strings.Join(words[start:start+n], " ")
}

// Agent periodically sends fake queries to a sink, mimicking the browser
// plugin's background behaviour. It stops when the context is cancelled.
type Agent struct {
	gen      *Generator
	interval time.Duration
	send     func(query string)
}

// NewAgent builds an agent emitting one fake query per interval through
// send.
func NewAgent(gen *Generator, interval time.Duration, send func(query string)) (*Agent, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("tmn: interval must be positive, got %v", interval)
	}
	if send == nil {
		return nil, fmt.Errorf("tmn: send callback required")
	}
	return &Agent{gen: gen, interval: interval, send: send}, nil
}

// Run emits fakes until ctx is done. It blocks; run it in a goroutine.
func (a *Agent) Run(ctx context.Context) {
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			a.send(a.gen.FakeQuery())
		}
	}
}
