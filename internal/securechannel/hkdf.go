// Package securechannel provides the encrypted tunnel between the client
// broker and the X-Search enclave (§4.2): an ECDH(P-256) handshake whose
// server key is bound to the enclave's attestation report, HKDF-SHA256 key
// derivation, and an AES-256-GCM record layer with strict sequence numbers
// (replay protection). Queries are "encrypted while outside the enclave,
// and only accessible as plain text from within".
package securechannel

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
)

// hkdfExtract implements RFC 5869 HKDF-Extract with SHA-256.
func hkdfExtract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// hkdfExpand implements RFC 5869 HKDF-Expand with SHA-256.
func hkdfExpand(prk, info []byte, length int) ([]byte, error) {
	const hashLen = sha256.Size
	if length > 255*hashLen {
		return nil, fmt.Errorf("securechannel: hkdf expand length %d too large", length)
	}
	var out, t []byte
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(t)
		mac.Write(info)
		mac.Write([]byte{counter})
		t = mac.Sum(nil)
		out = append(out, t...)
	}
	return out[:length], nil
}

// DeriveKey derives a length-byte key from secret, salt and context info.
func DeriveKey(secret, salt, info []byte, length int) ([]byte, error) {
	return hkdfExpand(hkdfExtract(salt, secret), info, length)
}
