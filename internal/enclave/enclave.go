// Package enclave is a software simulation of Intel SGX faithful enough to
// host the X-Search proxy logic: enclaves are built from measured pages,
// expose a narrow ecall interface, reach the outside world only through
// registered ocalls, draw from a platform-wide EPC budget (~90 MiB usable,
// §2.3 of the paper), and account every boundary transition — the paper's
// two main SGX performance costs. It deliberately does NOT provide real
// isolation (that needs hardware); it provides the same programming model,
// lifecycle, and cost accounting.
package enclave

import (
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Measurement is an SGX-style 256-bit hash identity (MRENCLAVE/MRSIGNER).
type Measurement [32]byte

// String renders the first 8 bytes in hex, enough to eyeball identities.
func (m Measurement) String() string {
	return fmt.Sprintf("%x", m[:8])
}

// PageSize is the SGX page granularity.
const PageSize = 4096

// DefaultEPCLimit is the usable EPC the paper assumes (~90 MB of the 128 MB
// reserved region is available to enclaves).
const DefaultEPCLimit = 90 << 20

// Common error conditions.
var (
	ErrDestroyed       = errors.New("enclave: destroyed")
	ErrUnknownECall    = errors.New("enclave: unknown ecall")
	ErrUnknownOCall    = errors.New("enclave: unknown ocall")
	ErrEPCExhausted    = errors.New("enclave: EPC exhausted and paging disabled")
	ErrPageUnaligned   = errors.New("enclave: page data exceeds page size")
	ErrBuilderFinished = errors.New("enclave: builder already built")
)

// Platform models one SGX-capable machine: a CPU fuse key (root of sealing
// key derivation), a shared EPC, and a monotonically increasing enclave ID
// space. Enclaves on the same platform compete for EPC, as on real hardware.
type Platform struct {
	fuseKey [32]byte
	epc     *EPC
	nextID  atomic.Uint64
}

// PlatformOption configures a Platform.
type PlatformOption interface {
	apply(*platformOptions)
}

type platformOptions struct {
	epcLimit int64
	fuseSeed []byte
}

type epcLimitOption int64

func (o epcLimitOption) apply(p *platformOptions) { p.epcLimit = int64(o) }

// WithEPCLimit overrides the usable EPC size in bytes.
func WithEPCLimit(bytes int64) PlatformOption { return epcLimitOption(bytes) }

type fuseSeedOption []byte

func (o fuseSeedOption) apply(p *platformOptions) { p.fuseSeed = o }

// WithFuseSeed derives the CPU fuse key deterministically from seed, so
// sealed blobs survive process restarts in tests and experiments. Without
// it the fuse key is random per Platform, as on distinct physical CPUs.
func WithFuseSeed(seed []byte) PlatformOption { return fuseSeedOption(seed) }

// NewPlatform creates a simulated SGX machine.
func NewPlatform(opts ...PlatformOption) *Platform {
	var o platformOptions
	o.epcLimit = DefaultEPCLimit
	for _, opt := range opts {
		opt.apply(&o)
	}
	p := &Platform{epc: NewEPC(o.epcLimit)}
	if o.fuseSeed != nil {
		p.fuseKey = sha256.Sum256(append([]byte("sgx-fuse-key:"), o.fuseSeed...))
	} else {
		if _, err := rand.Read(p.fuseKey[:]); err != nil {
			// crypto/rand failing is unrecoverable for key material.
			panic(fmt.Sprintf("enclave: fuse key: %v", err))
		}
	}
	return p
}

// EPC returns the platform's enclave page cache meter.
func (p *Platform) EPC() *EPC { return p.epc }

// SealKeyPolicy selects which identity binds a sealing key, mirroring the
// SGX KEYREQUEST policy bits.
type SealKeyPolicy int

// Sealing policies. PolicyMRENCLAVE keys are specific to one exact enclave
// build; PolicyMRSIGNER keys are shared by all enclaves of one vendor.
const (
	PolicyMRENCLAVE SealKeyPolicy = iota + 1
	PolicyMRSIGNER
)

// SealingKey derives a 256-bit sealing key for enclave e under the given
// policy, bound to the platform fuse key as on real hardware: the same
// enclave on another platform derives a different key.
func (p *Platform) SealingKey(e *Enclave, policy SealKeyPolicy, keyID [16]byte) ([32]byte, error) {
	var ident Measurement
	switch policy {
	case PolicyMRENCLAVE:
		ident = e.Measurement()
	case PolicyMRSIGNER:
		ident = e.MRSigner()
	default:
		return [32]byte{}, fmt.Errorf("enclave: unknown seal policy %d", policy)
	}
	mac := hmac.New(sha256.New, p.fuseKey[:])
	var pol [4]byte
	binary.LittleEndian.PutUint32(pol[:], uint32(policy))
	mac.Write(pol[:])
	mac.Write(ident[:])
	mac.Write(keyID[:])
	var key [32]byte
	copy(key[:], mac.Sum(nil))
	return key, nil
}

// Builder constructs an enclave by loading measured pages, mirroring the
// SGX loading flow: pages are added in order, each extending the
// measurement; Build computes the final MRENCLAVE and transitions the
// enclave to the initialized state (EINIT).
type Builder struct {
	platform *Platform
	hash     [32]byte // running measurement (hash chain)
	pages    int
	signer   Measurement
	cfg      Config
	ecalls   map[string]ECallHandler
	built    bool
}

// Config bounds an enclave's runtime behaviour.
type Config struct {
	// TCSCount is the number of thread control structures: the maximum
	// number of concurrent ecalls. Zero means 8, a typical SDK default.
	TCSCount int
	// TransitionCost simulates the enclave boundary crossing cost
	// (EENTER/EEXIT, ~2-4 us on real hardware). Applied on each ecall
	// and ocall entry and exit when positive.
	TransitionCost time.Duration
	// HeapPaging controls what happens when the enclave heap exceeds
	// available EPC: if true (default semantics of SGX1), allocations
	// succeed but count page faults; if false, allocations fail.
	DisablePaging bool
	// AsyncWorkers, when positive, enables switchless-style async ocalls:
	// trusted code may submit ocalls to a shared-memory ring via
	// Env.OCallAsync (no transition cost, TCS released on ecall return)
	// and this many untrusted worker goroutines service them, posting
	// results to the completion ring (Enclave.Completions). Zero disables
	// the rings; OCallAsync then fails with ErrAsyncDisabled.
	AsyncWorkers int
	// AsyncRingDepth bounds the submission and completion rings. Zero
	// means 2 * AsyncWorkers. A full submission ring blocks OCallAsync
	// (backpressure inside the enclave); a full completion ring blocks
	// workers (backpressure on the untrusted runtime's drain loop).
	AsyncRingDepth int
}

// NewBuilder starts building an enclave on the platform.
func (p *Platform) NewBuilder(cfg Config) *Builder {
	return &Builder{
		platform: p,
		cfg:      cfg,
		ecalls:   make(map[string]ECallHandler),
	}
}

// AddPage loads one page of code or initial data, extending the enclave
// measurement with its content and position — exactly the MRENCLAVE
// construction (a hash chain over page adds).
func (b *Builder) AddPage(data []byte) error {
	if b.built {
		return ErrBuilderFinished
	}
	if len(data) > PageSize {
		return ErrPageUnaligned
	}
	h := sha256.New()
	h.Write(b.hash[:])
	var pos [8]byte
	binary.LittleEndian.PutUint64(pos[:], uint64(b.pages))
	h.Write(pos[:])
	var padded [PageSize]byte
	copy(padded[:], data)
	h.Write(padded[:])
	copy(b.hash[:], h.Sum(nil))
	b.pages++
	return nil
}

// AddData measures an arbitrarily sized blob by splitting it into pages.
func (b *Builder) AddData(data []byte) error {
	for off := 0; off < len(data); off += PageSize {
		end := off + PageSize
		if end > len(data) {
			end = len(data)
		}
		if err := b.AddPage(data[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// SetSigner records the enclave vendor identity (MRSIGNER), the hash of the
// vendor's signing key in real SGX.
func (b *Builder) SetSigner(signer Measurement) {
	b.signer = signer
}

// RegisterECall declares an entry point before initialization. The handler
// name participates in the measurement: two enclaves with different
// interfaces measure differently.
func (b *Builder) RegisterECall(name string, h ECallHandler) error {
	if b.built {
		return ErrBuilderFinished
	}
	if _, dup := b.ecalls[name]; dup {
		return fmt.Errorf("enclave: duplicate ecall %q", name)
	}
	b.ecalls[name] = h
	return b.AddData([]byte("ecall:" + name))
}

// Build finalizes the measurement and returns an initialized enclave
// (combined EADD/EINIT). The enclave's static pages are charged to the EPC.
func (b *Builder) Build() (*Enclave, error) {
	if b.built {
		return nil, ErrBuilderFinished
	}
	b.built = true
	staticBytes := int64(b.pages) * PageSize
	if err := b.platform.epc.Alloc(staticBytes, b.cfg.DisablePaging); err != nil {
		return nil, fmt.Errorf("enclave: loading pages: %w", err)
	}
	tcs := b.cfg.TCSCount
	if tcs <= 0 {
		tcs = 8
	}
	e := &Enclave{
		id:          b.platform.nextID.Add(1),
		platform:    b.platform,
		measurement: b.hash,
		signer:      b.signer,
		cfg:         b.cfg,
		staticBytes: staticBytes,
		ecalls:      b.ecalls,
		ocalls:      make(map[string]OCallHandler),
		tcs:         make(chan struct{}, tcs),
	}
	for i := 0; i < tcs; i++ {
		e.tcs <- struct{}{}
	}
	if b.cfg.AsyncWorkers > 0 {
		e.startAsyncWorkers()
	}
	return e, nil
}

// ECallHandler runs inside the enclave. It receives an Env giving access to
// enclave services (ocalls, heap accounting, randomness) and the marshalled
// argument, returning the marshalled result.
type ECallHandler func(env Env, arg []byte) ([]byte, error)

// OCallHandler runs OUTSIDE the enclave, in the untrusted runtime.
type OCallHandler func(arg []byte) ([]byte, error)

// Env is the view enclave code has of its runtime.
type Env interface {
	// OCall invokes a registered untrusted function, paying transition
	// costs both ways.
	OCall(name string, arg []byte) ([]byte, error)
	// OCallAsync submits an untrusted function call to the switchless
	// submission ring and returns a completion handle without paying any
	// transition cost; the result arrives on the enclave's completion
	// ring. Fails with ErrAsyncDisabled unless Config.AsyncWorkers > 0.
	OCallAsync(name string, arg []byte) (uint64, error)
	// Alloc charges n bytes to the enclave heap (EPC). Free releases.
	Alloc(n int64) error
	Free(n int64)
	// Read fills buf with cryptographically secure random bytes (RDRAND).
	Read(buf []byte) error
}

// Enclave is an initialized enclave instance.
type Enclave struct {
	id          uint64
	platform    *Platform
	measurement Measurement
	signer      Measurement
	cfg         Config
	staticBytes int64

	ecalls map[string]ECallHandler
	ocalls map[string]OCallHandler

	tcs chan struct{}

	// Switchless async ocall rings (nil when Config.AsyncWorkers == 0).
	asyncSub  chan asyncCall
	asyncDone chan AsyncCompletion
	asyncStop chan struct{}

	mu        sync.Mutex
	destroyed bool
	heapBytes int64
	peakHeap  int64

	ecallCount     atomic.Uint64
	ocallCount     atomic.Uint64
	asyncID        atomic.Uint64
	asyncSubmitted atomic.Uint64
	asyncCompleted atomic.Uint64
}

// ID returns the platform-local enclave ID.
func (e *Enclave) ID() uint64 { return e.id }

// Measurement returns MRENCLAVE.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// TCSCount reports the enclave's effective thread-control-structure count
// (the concurrent-ecall bound), with the builder's default applied —
// callers sizing admission occupancy against it must not re-derive the
// default.
func (e *Enclave) TCSCount() int { return cap(e.tcs) }

// MRSigner returns MRSIGNER.
func (e *Enclave) MRSigner() Measurement { return e.signer }

// RegisterOCall installs an untrusted service the enclave may invoke.
// OCalls live outside the measurement: the untrusted runtime may register
// anything, and the enclave must treat results as hostile.
func (e *Enclave) RegisterOCall(name string, h OCallHandler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.destroyed {
		return ErrDestroyed
	}
	if _, dup := e.ocalls[name]; dup {
		return fmt.Errorf("enclave: duplicate ocall %q", name)
	}
	e.ocalls[name] = h
	return nil
}

// ECall enters the enclave through entry point name (EENTER), blocking for
// a TCS slot. ctx bounds the wait.
func (e *Enclave) ECall(ctx context.Context, name string, arg []byte) ([]byte, error) {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return nil, ErrDestroyed
	}
	h, ok := e.ecalls[name]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownECall, name)
	}
	// An already-cancelled context never enters, even if a TCS is free.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("enclave: context: %w", err)
	}
	select {
	case <-e.tcs:
	case <-ctx.Done():
		return nil, fmt.Errorf("enclave: waiting for TCS: %w", ctx.Err())
	}
	defer func() { e.tcs <- struct{}{} }()

	e.ecallCount.Add(1)
	e.payTransition() // EENTER
	res, err := h(&env{e: e}, arg)
	e.payTransition() // EEXIT
	return res, err
}

// payTransition burns the configured boundary-crossing cost. Busy-wait
// rather than sleep: real transition costs are microseconds, below timer
// granularity.
func (e *Enclave) payTransition() {
	if e.cfg.TransitionCost <= 0 {
		return
	}
	deadline := time.Now().Add(e.cfg.TransitionCost)
	for time.Now().Before(deadline) {
	}
}

// Destroyed reports whether the enclave has been torn down. The untrusted
// runtime uses it as a liveness probe: a destroyed enclave rejects every
// ecall with ErrDestroyed and never comes back.
func (e *Enclave) Destroyed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.destroyed
}

// Destroy tears the enclave down (EREMOVE), releasing its EPC.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.destroyed {
		return
	}
	e.destroyed = true
	e.stopAsync()
	e.platform.epc.Free(e.staticBytes + e.heapBytes)
	e.heapBytes = 0
}

// Stats is a snapshot of an enclave's resource accounting. The JSON tags
// serve the proxy's /stats and /metrics observability surface, which
// embeds this struct: resource aggregates only, nothing content-derived.
type Stats struct {
	ECalls      uint64 `json:"ecalls"`
	OCalls      uint64 `json:"ocalls"`
	HeapBytes   int64  `json:"heap_bytes"`
	PeakHeap    int64  `json:"peak_heap_bytes"`
	StaticBytes int64  `json:"static_bytes"`
	EPCUsed     int64  `json:"epc_used"`
	EPCLimit    int64  `json:"epc_limit"`
	PageFaults  uint64 `json:"page_faults"`
	// AsyncSubmitted/AsyncCompleted count switchless async ocalls posted
	// to the submission ring and serviced by the untrusted workers
	// (zero when Config.AsyncWorkers == 0). Async calls are included in
	// OCalls too; the gap between the two async counters is the in-flight
	// depth.
	AsyncSubmitted uint64 `json:"async_submitted"`
	AsyncCompleted uint64 `json:"async_completed"`
}

// Stats returns current accounting.
func (e *Enclave) Stats() Stats {
	e.mu.Lock()
	heap, peak := e.heapBytes, e.peakHeap
	e.mu.Unlock()
	used, limit, faults := e.platform.epc.Usage()
	submitted, completed := e.asyncCounters()
	return Stats{
		ECalls:         e.ecallCount.Load(),
		OCalls:         e.ocallCount.Load(),
		HeapBytes:      heap,
		PeakHeap:       peak,
		StaticBytes:    e.staticBytes,
		EPCUsed:        used,
		EPCLimit:       limit,
		PageFaults:     faults,
		AsyncSubmitted: submitted,
		AsyncCompleted: completed,
	}
}

// env implements Env for a single ecall activation.
type env struct {
	e *Enclave
}

func (v *env) OCall(name string, arg []byte) ([]byte, error) {
	e := v.e
	e.mu.Lock()
	h, ok := e.ocalls[name]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownOCall, name)
	}
	e.ocallCount.Add(1)
	e.payTransition() // exit to untrusted
	res, err := h(arg)
	e.payTransition() // re-enter
	return res, err
}

func (v *env) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("enclave: negative alloc %d", n)
	}
	e := v.e
	if err := e.platform.epc.Alloc(n, e.cfg.DisablePaging); err != nil {
		return err
	}
	e.mu.Lock()
	e.heapBytes += n
	if e.heapBytes > e.peakHeap {
		e.peakHeap = e.heapBytes
	}
	e.mu.Unlock()
	return nil
}

func (v *env) Free(n int64) {
	if n <= 0 {
		return
	}
	e := v.e
	e.mu.Lock()
	if n > e.heapBytes {
		n = e.heapBytes
	}
	e.heapBytes -= n
	e.mu.Unlock()
	e.platform.epc.Free(n)
}

func (v *env) Read(buf []byte) error {
	_, err := rand.Read(buf)
	return err
}

// EPC meters the platform's enclave page cache. Allocations beyond the
// limit either fail (paging disabled) or succeed while counting page
// faults, modelling the severe slowdown of EPC paging the paper describes.
type EPC struct {
	mu     sync.Mutex
	used   int64
	limit  int64
	faults uint64
}

// NewEPC creates a meter with the given byte limit.
func NewEPC(limit int64) *EPC {
	return &EPC{limit: limit}
}

// Alloc charges n bytes.
func (c *EPC) Alloc(n int64, failWhenFull bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.used+n > c.limit {
		if failWhenFull {
			return ErrEPCExhausted
		}
		// Paged out: count a fault per page beyond the limit.
		over := c.used + n - c.limit
		c.faults += uint64((over + PageSize - 1) / PageSize)
	}
	c.used += n
	return nil
}

// Free releases n bytes.
func (c *EPC) Free(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.used -= n
	if c.used < 0 {
		c.used = 0
	}
}

// Usage returns (used, limit, faults).
func (c *EPC) Usage() (used, limit int64, faults uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used, c.limit, c.faults
}
