package dcnet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"xsearch/internal/netsim"
)

func testGroup(t *testing.T, members int) *Group {
	t.Helper()
	g, err := NewGroup(GroupConfig{Members: members, SlotSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(GroupConfig{Members: 2}); err == nil {
		t.Error("2 members accepted")
	}
}

// The dining-cryptographers property: for ANY owner, the combined
// broadcasts recover exactly the owner's message.
func TestRoundRecoversMessage(t *testing.T) {
	g := testGroup(t, 5)
	for owner := 0; owner < g.Members(); owner++ {
		msg := []byte("anonymous message from somebody")
		got, err := g.Round(owner, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("owner %d: round corrupted message: %q", owner, got)
		}
	}
}

func TestRoundProperty(t *testing.T) {
	g := testGroup(t, 4)
	f := func(msg []byte, ownerSeed uint8) bool {
		if len(msg) > g.SlotSize() {
			msg = msg[:g.SlotSize()]
		}
		owner := int(ownerSeed) % g.Members()
		got, err := g.Round(owner, msg)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRoundErrors(t *testing.T) {
	g := testGroup(t, 3)
	if _, err := g.Round(-1, []byte("x")); !errors.Is(err, ErrBadOwner) {
		t.Errorf("err = %v", err)
	}
	if _, err := g.Round(3, []byte("x")); !errors.Is(err, ErrBadOwner) {
		t.Errorf("err = %v", err)
	}
	if _, err := g.Round(0, make([]byte, 1024)); !errors.Is(err, ErrMessageTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestExchange(t *testing.T) {
	g := testGroup(t, 4)
	resp, err := g.Exchange(2, []byte("the query"), func(req []byte) ([]byte, error) {
		if string(bytes.TrimRight(req, "\x00")) != "the query" {
			t.Errorf("exit saw %q", req)
		}
		return []byte("the answer"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimRight(resp, "\x00")) != "the answer" {
		t.Errorf("resp = %q", resp)
	}
}

func TestExchangeExitError(t *testing.T) {
	g := testGroup(t, 3)
	resp, err := g.Exchange(1, []byte("q"), func([]byte) ([]byte, error) {
		return nil, errors.New("engine down")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(bytes.TrimRight(resp, "\x00"), []byte("ERR ")) {
		t.Errorf("resp = %q", resp)
	}
}

func TestExchangeMultiSlotResponse(t *testing.T) {
	g, err := NewGroup(GroupConfig{Members: 3, SlotSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	long := bytes.Repeat([]byte("abcdefgh"), 10) // 80 bytes = 5 slots
	resp, err := g.Exchange(1, []byte("q"), func([]byte) ([]byte, error) {
		return long, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp[:len(long)], long) {
		t.Errorf("multi-slot response corrupted")
	}
}

// Rounds with a link pay two traversals each.
func TestRoundPaysLinkDelay(t *testing.T) {
	g, err := NewGroup(GroupConfig{
		Members:  3,
		SlotSize: 64,
		Link:     netsim.NewLink(netsim.Constant(10*time.Millisecond), 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := g.Round(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("round took %v, want >= ~20ms of WAN", elapsed)
	}
}

func BenchmarkRound(b *testing.B) {
	g, err := NewGroup(GroupConfig{Members: 8, SlotSize: 512})
	if err != nil {
		b.Fatal(err)
	}
	msg := bytes.Repeat([]byte("q"), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Round(i%8, msg); err != nil {
			b.Fatal(err)
		}
	}
}
