package experiments

import (
	"context"
	"fmt"
	"time"

	"xsearch/internal/enclave"
	"xsearch/internal/metrics"
	"xsearch/internal/obs"
	"xsearch/internal/proxy"
)

// ObsConfig sizes the observability-overhead ablation. The measured
// claim: the privacy-safe observability layer — trusted-side per-stage
// histograms on every request, the structured event ring, the Prometheus
// rendering — costs under 5% throughput, because the hot path pays only
// a handful of clock reads and fixed-bucket histogram increments per
// request (no allocation, no formatting, no per-request events). The
// ablation drives the identical async workload with observability off
// and on and reports the throughput/latency delta plus what the enabled
// run actually recorded (stage coverage, ring occupancy).
type ObsConfig struct {
	// Workers concurrent clients issue Requests distinct queries per run.
	Workers  int
	Requests int
	// Repeats re-runs each variant, keeping the best throughput —
	// scheduler noise on a loaded host easily exceeds the effect size.
	Repeats int
	// EngineService is the loopback engine's per-request latency.
	EngineService time.Duration
	// TCSCount bounds concurrent ecalls; PipelineDepth the async staging.
	TCSCount      int
	PipelineDepth int
	// DocsPerTopic sizes the engine corpus; Seed fixes randomness.
	DocsPerTopic int
	Seed         uint64
}

// DefaultObsConfig is the full-size ablation.
func DefaultObsConfig() ObsConfig {
	return ObsConfig{
		Workers:       32,
		Requests:      800,
		Repeats:       3,
		EngineService: time.Millisecond,
		TCSCount:      4,
		PipelineDepth: 64,
		DocsPerTopic:  20,
		Seed:          1,
	}
}

// ObsResult carries the ablation's measurements.
type ObsResult struct {
	// BaselineRPS/ObsRPS are the best-of-Repeats throughputs with the
	// layer off and on; Overhead is 1 - ObsRPS/BaselineRPS (negative
	// means the difference drowned in noise).
	BaselineRPS float64
	ObsRPS      float64
	Overhead    float64
	// Request latency medians/tails for both variants.
	BaselineP50 time.Duration
	ObsP50      time.Duration
	BaselineP95 time.Duration
	ObsP95      time.Duration
	// StagesCovered lists the pipeline stages the enabled run actually
	// accumulated samples for, in pipeline order.
	StagesCovered []string
	// EventsLogged is the enabled run's final event-ring occupancy.
	EventsLogged int
	// InvariantOK reports heap == history + cache + index after both runs.
	InvariantOK bool
}

// RunObs measures the observability layer's throughput cost on the async
// hot path.
func RunObs(cfg ObsConfig) (*ObsResult, error) {
	if cfg.Workers <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("obs: need workers and requests")
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	srv, err := pipelineEngine(PipelineConfig{
		DocsPerTopic: cfg.DocsPerTopic,
		Seed:         cfg.Seed,
	}, cfg.EngineService)
	if err != nil {
		return nil, err
	}
	defer shutdownServer(srv)

	res := &ObsResult{InvariantOK: true}
	runOne := func(obsOn bool, rep int) (rps float64, p50, p95 time.Duration, st proxy.Stats, err error) {
		p, err := proxy.New(proxy.Config{
			K:             2,
			Engines:       []proxy.EngineSpec{{Host: srv.Addr()}},
			Seed:          cfg.Seed,
			AsyncOcalls:   true,
			PipelineDepth: cfg.PipelineDepth,
			Observability: obsOn,
			EnclaveConfig: enclave.Config{TCSCount: cfg.TCSCount},
		})
		if err != nil {
			return 0, 0, 0, proxy.Stats{}, err
		}
		defer shutdownProxy(p)
		for i := 0; i < 4; i++ {
			if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("obs warm %d", i)); err != nil {
				return 0, 0, 0, proxy.Stats{}, err
			}
		}
		hist := metrics.NewHistogram()
		label := fmt.Sprintf("obs%t-%d", obsOn, rep)
		elapsed, err := drivePipeline(p, cfg.Workers, cfg.Requests, label, hist)
		if err != nil {
			return 0, 0, 0, proxy.Stats{}, err
		}
		snap := hist.Snapshot()
		res.InvariantOK = res.InvariantOK && proxyInvariantOK(p)
		return float64(cfg.Requests) / elapsed.Seconds(), snap.P50, snap.P95, p.Stats(), nil
	}

	// Interleave the variants across repeats so slow drift in the host's
	// load hits both sides equally.
	for rep := 0; rep < cfg.Repeats; rep++ {
		rps, p50, p95, _, err := runOne(false, rep)
		if err != nil {
			return nil, fmt.Errorf("obs baseline: %w", err)
		}
		if rps > res.BaselineRPS {
			res.BaselineRPS, res.BaselineP50, res.BaselineP95 = rps, p50, p95
		}
		rps, p50, p95, st, err := runOne(true, rep)
		if err != nil {
			return nil, fmt.Errorf("obs enabled: %w", err)
		}
		if rps > res.ObsRPS {
			res.ObsRPS, res.ObsP50, res.ObsP95 = rps, p50, p95
			res.EventsLogged = st.EventsLogged
			// obs.StageNames is already in pipeline order.
			res.StagesCovered = res.StagesCovered[:0]
			for _, name := range obs.StageNames {
				if snap, ok := st.Stages[name]; ok && snap.Count > 0 {
					res.StagesCovered = append(res.StagesCovered, name)
				}
			}
		}
	}
	if res.BaselineRPS > 0 {
		res.Overhead = 1 - res.ObsRPS/res.BaselineRPS
	}
	return res, nil
}
