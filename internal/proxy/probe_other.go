//go:build !unix

package proxy

import "net"

// peekProbe has no non-consuming implementation off unix; probeConn falls
// back to the deadline-read check.
func peekProbe(net.Conn) (alive, handled bool) { return false, false }
