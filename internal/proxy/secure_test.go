package proxy

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"xsearch/internal/attestation"
	"xsearch/internal/enclave"
	"xsearch/internal/securechannel"
)

// secureSession drives the proxy's handshake endpoint directly (what the
// broker does, but in-package so the handler paths are covered here).
type secureSession struct {
	channel *securechannel.Channel
	session string
}

func openSecureSession(t *testing.T, p *Proxy) *secureSession {
	t.Helper()
	hs, err := securechannel.NewHandshake(securechannel.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	offerJSON, err := hs.Offer().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"offer": json.RawMessage(offerJSON),
		"nonce": nonce,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.URL()+"/handshake", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handshake status %d", resp.StatusCode)
	}
	var hr HandshakeResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	serverOffer, err := securechannel.UnmarshalOffer(hr.Offer)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the attestation binding like a real client.
	var vr attestation.VerificationReport
	if err := json.Unmarshal(hr.VerificationReport, &vr); err != nil {
		t.Fatal(err)
	}
	verifier := &attestation.Verifier{
		ServiceKey: p.AttestationService().PublicKey(),
		Policy:     attestation.Policy{AcceptedMeasurements: []enclave.Measurement{p.Measurement()}},
	}
	expect := attestation.BindKey(serverOffer.PubKey)
	if _, err := verifier.Verify(&vr, nonce, &expect); err != nil {
		t.Fatalf("attestation: %v", err)
	}
	channel, err := hs.Complete(serverOffer)
	if err != nil {
		t.Fatal(err)
	}
	return &secureSession{channel: channel, session: hr.Session}
}

func (s *secureSession) search(t *testing.T, p *Proxy, query string) ([]byte, int) {
	t.Helper()
	pt, err := json.Marshal(map[string]any{"query": query, "count": 10})
	if err != nil {
		t.Fatal(err)
	}
	record, err := s.channel.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(SecureEnvelope{Session: s.session, Record: record})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.URL()+"/secure", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var env SecureEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	respPT, err := s.channel.Open(env.Record)
	if err != nil {
		t.Fatal(err)
	}
	return respPT, http.StatusOK
}

func TestSecureFlowInPackage(t *testing.T) {
	st := newTestStack(t, nil)
	sess := openSecureSession(t, st.proxy)
	pt, status := sess.search(t, st.proxy, "chicken recipe")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(pt, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) == 0 {
		t.Error("no results over secure channel")
	}
	if st.proxy.Stats().Handshakes != 1 {
		t.Errorf("handshakes = %d", st.proxy.Stats().Handshakes)
	}
}

func TestSecureSessionEviction(t *testing.T) {
	st := newTestStack(t, func(c *Config) { c.MaxSessions = 2 })
	s1 := openSecureSession(t, st.proxy)
	s2 := openSecureSession(t, st.proxy)
	s3 := openSecureSession(t, st.proxy) // evicts s1 (FIFO)

	if _, status := s1.search(t, st.proxy, "q"); status == http.StatusOK {
		t.Error("evicted session still served")
	}
	if _, status := s2.search(t, st.proxy, "chicken recipe"); status != http.StatusOK {
		t.Errorf("live session rejected: %d", status)
	}
	if _, status := s3.search(t, st.proxy, "chicken recipe"); status != http.StatusOK {
		t.Errorf("newest session rejected: %d", status)
	}
}

func TestSecureReplayRejected(t *testing.T) {
	st := newTestStack(t, nil)
	sess := openSecureSession(t, st.proxy)
	pt, err := json.Marshal(map[string]any{"query": "chicken recipe"})
	if err != nil {
		t.Fatal(err)
	}
	record, err := sess.channel.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(SecureEnvelope{Session: sess.session, Record: record})
	if err != nil {
		t.Fatal(err)
	}
	post := func() int {
		resp, err := http.Post(st.proxy.URL()+"/secure", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		return resp.StatusCode
	}
	if status := post(); status != http.StatusOK {
		t.Fatalf("first send status %d", status)
	}
	if status := post(); status == http.StatusOK {
		t.Error("replayed record accepted")
	}
}

func TestServeQueryDirect(t *testing.T) {
	st := newTestStack(t, nil)
	results, err := st.proxy.ServeQuery(context.Background(), "chicken recipe dinner")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("no results via ServeQuery")
	}
	if _, err := st.proxy.ServeQuery(context.Background(), "  "); err == nil {
		t.Error("blank query accepted")
	}
}

func TestHandshakeBadBody(t *testing.T) {
	st := newTestStack(t, nil)
	resp, err := http.Post(st.proxy.URL()+"/handshake", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d", resp.StatusCode)
	}
	// GET not allowed.
	resp2, err := http.Get(st.proxy.URL() + "/handshake")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d", resp2.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	st := newTestStack(t, nil)
	resp, err := http.Get(st.proxy.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}
