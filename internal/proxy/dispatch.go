package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"xsearch/internal/obs"
)

// pipelineRuntime is the untrusted half of the async request pipeline: it
// admits requests up to PipelineDepth, drains the enclave's completion
// ring through a pool of resume workers (each re-entering the enclave with
// one completion), routes final outcomes back to parked request
// goroutines, arms hedge timers, and aborts hedge losers. Nothing here is
// trusted — it moves opaque descriptors and timing around; every decision
// that matters (candidate choice, winner arbitration, breaker accounting,
// sealing) happens inside the enclave.
type pipelineRuntime struct {
	p     *Proxy
	depth int
	sem   chan struct{}

	mu      sync.Mutex
	waiters map[uint64]chan pendingOutcome
	// unclaimed stashes outcomes that arrived before their request
	// goroutine registered a waiter: the fetch is submitted inside the
	// stage-1 ecall, so a fast completion (immediate dial failure, warm
	// loopback engine) can race await(). Entries are consumed by await()
	// at registration time. abandoned marks ids whose caller genuinely
	// gave up (context cancelled); their late outcome is dropped — or, for
	// a follower claim, redeemed-and-discarded so the trusted entry frees.
	unclaimed map[uint64]pendingOutcome
	abandoned map[uint64]struct{}

	stop     chan struct{}
	stopOnce sync.Once
	workers  sync.WaitGroup

	// Ecall batching (BatchMax >= 2): admitted plain/secure requests are
	// funneled through submitQ into one group-commit batcher goroutine
	// that vectorizes stage-1 crossings, and the resume workers drain
	// completions in batches of the same bound. Handshakes and the
	// control ecalls stay singletons. submitQ is nil when batching is
	// off.
	batchMax    int
	batchWindow time.Duration
	submitQ     chan *batchItem
	bstats      *batchStats
}

// pendingOutcome is what the dispatcher delivers to a parked request
// goroutine: the leader's final reply (or error), or a claim signal for a
// coalesced follower whose results are ready in-enclave.
type pendingOutcome struct {
	reply envelopeReply
	err   error
	claim bool
}

// resumeWorkerCount bounds how many completions are re-entered into the
// enclave concurrently. The resume ecall is the pipeline's CPU stage
// (parse → filter → cache → seal); a small pool keeps those stages
// overlapping without hogging TCS slots.
const resumeWorkerCount = 4

func newPipelineRuntime(p *Proxy, depth, batchMax int, batchWindow time.Duration) *pipelineRuntime {
	pl := &pipelineRuntime{
		p:           p,
		depth:       depth,
		sem:         make(chan struct{}, depth),
		waiters:     make(map[uint64]chan pendingOutcome),
		unclaimed:   make(map[uint64]pendingOutcome),
		abandoned:   make(map[uint64]struct{}),
		stop:        make(chan struct{}),
		batchMax:    batchMax,
		batchWindow: batchWindow,
	}
	if batchMax > 1 {
		// Buffered to the admission depth: a sender that won admission
		// always finds queue space, so enqueueing never blocks behind
		// the batcher's in-flight ecall.
		pl.submitQ = make(chan *batchItem, depth)
		pl.bstats = newBatchStats(batchMax)
	}
	return pl
}

// start spawns the resume workers (batched variants when batching is on)
// and the request batcher.
func (pl *pipelineRuntime) start() {
	for i := 0; i < resumeWorkerCount; i++ {
		pl.workers.Add(1)
		if pl.batchMax > 1 {
			go pl.resumeLoopBatched()
		} else {
			go pl.resumeLoop()
		}
	}
	if pl.submitQ != nil {
		pl.workers.Add(1)
		go pl.batcherLoop()
	}
}

// stopDispatch halts the resume workers (shutdown/crash) and frees the
// outcome bookkeeping: with the workers gone no delivery will ever
// consume a stashed outcome or clear an abandoned mark, so entries from
// requests parked at teardown would otherwise linger for the life of the
// runtime.
func (pl *pipelineRuntime) stopDispatch() {
	pl.stopOnce.Do(func() { close(pl.stop) })
	pl.workers.Wait()
	pl.mu.Lock()
	pl.unclaimed = make(map[uint64]pendingOutcome)
	pl.abandoned = make(map[uint64]struct{})
	pl.mu.Unlock()
}

// drain waits for the admission semaphore to empty — every admitted
// request has delivered its final reply — bounded by ctx. Requests
// admitted while draining (direct-API callers racing shutdown) extend the
// wait; the HTTP front has already stopped accepting by the time Shutdown
// calls this.
func (pl *pipelineRuntime) drain(ctx context.Context) error {
	for {
		if pl.inFlight() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("proxy: pipeline drain: %w", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// inFlight reports currently admitted requests (a Stats gauge).
func (pl *pipelineRuntime) inFlight() int { return len(pl.sem) }

// resumeLoop drains the completion ring: each completion is re-entered
// into the enclave via the "resume" ecall, and the enclave's verdict is
// routed to whoever is parked on it.
func (pl *pipelineRuntime) resumeLoop() {
	defer pl.workers.Done()
	comp := pl.p.encl.Completions()
	for {
		select {
		case <-pl.stop:
			return
		case c := <-comp:
			if c.Err != nil {
				// Submission-time validation makes handler lookups
				// infallible; an errored completion carries no token to
				// route, so there is nothing to resume.
				continue
			}
			if len(c.Result) == 0 {
				// A pure tls_step close batch: fire-and-forget, no token
				// to resume (fetch and flight steps always carry JSON).
				continue
			}
			pl.handleCompletion(c.Result)
		}
	}
}

func (pl *pipelineRuntime) handleCompletion(raw []byte) {
	out, err := pl.p.encl.ECall(context.Background(), "resume", raw)
	if err != nil {
		return // enclave destroyed mid-flight
	}
	pl.routeResume(out)
}

// resumeLoopBatched is resumeLoop's batching variant: the first ready
// completion is taken blocking, every other already-ready completion (up
// to BatchMax) rides the same "resume-batch" ecall, amortizing the
// re-entry transition across the batch. Per-entry verdicts are routed
// exactly as the singleton loop routes them.
func (pl *pipelineRuntime) resumeLoopBatched() {
	defer pl.workers.Done()
	comp := pl.p.encl.Completions()
	for {
		select {
		case <-pl.stop:
			return
		case c := <-comp:
			batch := make([][]byte, 0, pl.batchMax)
			if c.Err == nil && len(c.Result) > 0 {
				batch = append(batch, c.Result)
			}
		drain:
			for len(batch) < pl.batchMax {
				select {
				case c2 := <-comp:
					// Empty results are pure tls_step close batches:
					// nothing to resume.
					if c2.Err == nil && len(c2.Result) > 0 {
						batch = append(batch, c2.Result)
					}
				default:
					break drain
				}
			}
			if len(batch) == 0 {
				continue
			}
			pl.handleCompletionBatch(batch)
		}
	}
}

func (pl *pipelineRuntime) handleCompletionBatch(batch [][]byte) {
	pl.bstats.submitted.Add(1)
	out, err := pl.p.encl.ECall(context.Background(), "resume-batch", encodeBatch(batch))
	if err != nil {
		return // enclave destroyed mid-flight
	}
	replies, err := decodeBatch(out)
	if err != nil {
		return
	}
	for _, raw := range replies {
		var item batchItemReply
		if err := json.Unmarshal(raw, &item); err != nil || item.Err != "" {
			continue
		}
		pl.routeResume(item.Reply)
	}
}

// routeResume routes one resume verdict — from a singleton or batched
// re-entry — to whoever is parked on it.
func (pl *pipelineRuntime) routeResume(out []byte) {
	var rr resumeReply
	if err := json.Unmarshal(out, &rr); err != nil {
		return
	}
	// A terminal TLS flight names its token on EVERY terminal shape —
	// done, orphan, late loser — so the fetcher's per-token TLS state
	// (tombstone, conn binding) is dropped exactly once. Must run before
	// the State gate: orphans terminate flights too.
	if rr.DoneToken != 0 {
		if f := pl.p.conns.fetch; f != nil {
			f.endTLS(rr.DoneToken)
		}
	}
	if rr.State != "done" {
		return
	}
	// Abort the losers before delivering the win.
	if f := pl.p.conns.fetch; f != nil {
		for _, tok := range rr.CancelTokens {
			f.cancelFetch(tok)
		}
	}
	var outcome pendingOutcome
	if rr.Err != "" {
		outcome.err = fmt.Errorf("%s", rr.Err)
	} else if err := json.Unmarshal(rr.Reply, &outcome.reply); err != nil {
		outcome.err = fmt.Errorf("proxy: bad pipeline reply: %w", err)
	}
	pl.deliver(rr.PendingID, outcome)
	for _, wid := range rr.Waiters {
		pl.deliver(wid, pendingOutcome{claim: true})
	}
}

// deliver hands an outcome — a final reply, or a claim signal for a
// coalesced follower — to the goroutine parked on id. The send happens
// under the waiter lock: the channel is buffered and receives exactly one
// send, so this cannot block, and holding the lock serializes delivery
// against abandon. A missing waiter does NOT mean the caller gave up —
// the request goroutine may simply not have reached await() yet (the
// fetch was submitted inside the stage-1 ecall) — so the outcome is
// stashed for await() to consume. Only an id abandon() marked is truly
// gone: its outcome is dropped (a ready follower claim is redeemed and
// discarded so the trusted entry frees) and the mark released.
func (pl *pipelineRuntime) deliver(id uint64, out pendingOutcome) {
	pl.mu.Lock()
	if ch := pl.waiters[id]; ch != nil {
		delete(pl.waiters, id)
		ch <- out
		pl.mu.Unlock()
		return
	}
	if _, gone := pl.abandoned[id]; gone {
		delete(pl.abandoned, id)
		pl.mu.Unlock()
		if out.claim {
			pl.discardClaim(id)
		}
		return
	}
	pl.unclaimed[id] = out
	pl.mu.Unlock()
}

// discardClaim redeems and drops an abandoned follower's results.
func (pl *pipelineRuntime) discardClaim(id uint64) {
	arg, err := json.Marshal(claimArg{PendingID: id})
	if err != nil {
		return
	}
	_, _ = pl.p.encl.ECall(context.Background(), "claim", arg)
}

// await parks the calling request goroutine until the dispatcher delivers
// its outcome, arming the hedge timer when the enclave said one is worth
// having.
func (pl *pipelineRuntime) await(ctx context.Context, reply envelopeReply) (envelopeReply, error) {
	id := reply.Pending
	ch := make(chan pendingOutcome, 1)
	pl.mu.Lock()
	if out, ok := pl.unclaimed[id]; ok {
		// The outcome beat us here (fetch completed before the stage-1
		// ecall's caller reached await): consume the stash directly.
		delete(pl.unclaimed, id)
		pl.mu.Unlock()
		return pl.consume(ctx, id, out)
	}
	pl.waiters[id] = ch
	pl.mu.Unlock()

	if reply.CanHedge {
		delay := pl.p.hedgeDelayFor(reply.Upstream)
		armed := time.Now()
		timer := time.AfterFunc(delay, func() { pl.fireHedge(id, armed) })
		defer timer.Stop()
	}

	select {
	case out := <-ch:
		return pl.consume(ctx, id, out)
	case <-ctx.Done():
		pl.abandon(id, ch)
		return envelopeReply{}, fmt.Errorf("proxy: pipelined request: %w", ctx.Err())
	case <-pl.stop:
		pl.abandon(id, ch)
		return envelopeReply{}, fmt.Errorf("proxy: pipeline stopped")
	}
}

// consume turns a delivered outcome into the caller's reply, redeeming a
// follower claim via the claim ecall.
func (pl *pipelineRuntime) consume(ctx context.Context, id uint64, out pendingOutcome) (envelopeReply, error) {
	if out.claim {
		reply, err := pl.claim(ctx, id)
		if err != nil && ctx.Err() != nil {
			// The claim ecall died on the caller's cancelled context;
			// free the trusted entry so it cannot leak.
			pl.discardClaim(id)
		}
		return reply, err
	}
	return out.reply, out.err
}

// abandon unregisters a parked request whose caller gave up, consuming an
// outcome that raced in so a ready follower entry is still redeemed (and
// dropped) inside the enclave. When no outcome raced in, the id is marked
// abandoned so the eventual delivery is dropped rather than stashed, and
// the enclave is told: a lone leader's in-flight fetches are cancelled
// and its trusted entries freed — otherwise client-timeout storms against
// an unresponsive upstream would accumulate fetches past the
// PipelineDepth×(1+HedgeMax) bound the async sizing relies on.
func (pl *pipelineRuntime) abandon(id uint64, ch chan pendingOutcome) {
	pl.mu.Lock()
	delete(pl.waiters, id)
	if out, ok := pl.unclaimed[id]; ok {
		// The outcome was stashed before any waiter registered — the
		// batched submit path abandons ids whose caller never reached
		// await(), so the stash (not the caller's channel) may hold the
		// delivery. Consume it here or it lingers forever.
		delete(pl.unclaimed, id)
		pl.mu.Unlock()
		if out.claim {
			pl.discardClaim(id)
		}
		return
	}
	select {
	case out := <-ch:
		pl.mu.Unlock()
		if out.claim {
			pl.discardClaim(id)
		}
		return
	default:
		pl.abandoned[id] = struct{}{}
		pl.mu.Unlock()
	}
	if pl.p == nil {
		return // dispatcher-only unit tests
	}
	arg, err := json.Marshal(abandonArg{PendingID: id})
	if err != nil {
		return
	}
	out, err := pl.p.encl.ECall(context.Background(), "abandon", arg)
	if err != nil {
		return // enclave destroyed mid-teardown; nothing left to cancel
	}
	var ar abandonReply
	if err := json.Unmarshal(out, &ar); err != nil {
		return
	}
	if ar.Freed {
		// The enclave released the entry while live: no resume will ever
		// deliver this id, so the mark would otherwise linger forever.
		pl.mu.Lock()
		delete(pl.abandoned, id)
		pl.mu.Unlock()
	}
	if f := pl.p.conns.fetch; f != nil {
		for _, tok := range ar.CancelTokens {
			f.cancelFetch(tok)
		}
	}
}

// claim redeems a coalesced follower's ready results.
func (pl *pipelineRuntime) claim(ctx context.Context, id uint64) (envelopeReply, error) {
	arg, err := json.Marshal(claimArg{PendingID: id})
	if err != nil {
		return envelopeReply{}, err
	}
	out, err := pl.p.encl.ECall(ctx, "claim", arg)
	if err != nil {
		return envelopeReply{}, err
	}
	var reply envelopeReply
	if err := json.Unmarshal(out, &reply); err != nil {
		return envelopeReply{}, fmt.Errorf("proxy: bad claim reply: %w", err)
	}
	return reply, nil
}

// fireHedge asks the enclave to hedge a still-parked request; the enclave
// decides (health, HedgeMax, flight state), the runtime only times. When
// another hedge remains in budget, the timer re-arms against the upstream
// the hedge actually went to — its own p95 when warm, the documented
// DefaultHedgeDelay while cold. The primary's delay is stale at that
// point: re-using it would fire the next hedge near-immediately when the
// primary's history sits at the autoHedgeFloor, or effectively never when
// its p95 towers over the fresh upstream's. A timer firing after the
// request finalized gets {Hedged: false} and the chain stops.
func (pl *pipelineRuntime) fireHedge(id uint64, armed time.Time) {
	select {
	case <-pl.stop:
		return
	default:
	}
	arg, err := json.Marshal(hedgeArg{PendingID: id})
	if err != nil {
		return
	}
	out, err := pl.p.encl.ECall(context.Background(), "hedge", arg)
	if err != nil {
		return
	}
	var hr hedgeReply
	if err := json.Unmarshal(out, &hr); err != nil {
		return
	}
	if hr.Hedged {
		// The hedge stage measures how long the request waited on its
		// primary before a hedge actually went out (timer arm → fire, for
		// fires the enclave accepted).
		pl.p.trusted.stages.Since(obs.StageHedge, armed)
	}
	if hr.Hedged && hr.CanHedge {
		next := pl.p.hedgeDelayFor(hr.Upstream)
		rearmed := time.Now()
		time.AfterFunc(next, func() { pl.fireHedge(id, rearmed) })
	}
}

// run is the pipelined request path: admit, stage-1 ecall, then either the
// short-circuit reply or a park-and-await.
func (p *Proxy) run(ctx context.Context, req envelope) (envelopeReply, error) {
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	replyStart := time.Now()
	defer func() { p.trusted.stages.Since(obs.StageReply, replyStart) }()
	pl := p.pipeline
	if pl == nil {
		return p.ecall(ctx, req)
	}
	admitStart := time.Now()
	select {
	case pl.sem <- struct{}{}:
	case <-ctx.Done():
		return envelopeReply{}, fmt.Errorf("proxy: pipeline admission: %w", ctx.Err())
	case <-pl.stop:
		return envelopeReply{}, fmt.Errorf("proxy: pipeline stopped")
	}
	p.trusted.stages.Since(obs.StageAdmit, admitStart)
	defer func() { <-pl.sem }()

	var reply envelopeReply
	var err error
	if pl.submitQ != nil && req.Type != typeHandshake {
		reply, err = pl.runBatched(ctx, req)
	} else {
		reply, err = p.ecall(ctx, req)
	}
	if err != nil || reply.Pending == 0 {
		return reply, err
	}
	return pl.await(ctx, reply)
}

// hedgeDelayFor resolves the effective hedge delay for a request whose
// primary fetch went to host: the configured HedgeDelay, or — when zero —
// the p95 of host's observed fetch latency once enough samples exist
// (hedging above p95 keeps the duplicate-request rate near 5%, the
// tail-at-scale guidance), else DefaultHedgeDelay while cold.
func (p *Proxy) hedgeDelayFor(host string) time.Duration {
	if p.cfg.HedgeDelay > 0 {
		return p.cfg.HedgeDelay
	}
	if f := p.conns.fetch; f != nil {
		if h := f.latencyFor(host); h != nil && h.Count() >= autoHedgeMinSamples {
			d := h.Percentile(95)
			if d < autoHedgeFloor {
				d = autoHedgeFloor
			}
			return d
		}
	}
	return DefaultHedgeDelay
}

const (
	// autoHedgeMinSamples is how many completed fetches an upstream needs
	// before its p95 drives the hedge delay.
	autoHedgeMinSamples = 16
	// autoHedgeFloor keeps a very fast upstream's derived delay from
	// collapsing to the histogram's microsecond floor and hedging every
	// request.
	autoHedgeFloor = time.Millisecond
)

// batchItem is one admitted request riding the group-commit batcher. The
// done channel is buffered so delivery never blocks; gone flags a caller
// that stopped waiting (context cancelled, pipeline stopping) so whichever
// side ends up consuming the raced outcome abandons the parked entry.
type batchItem struct {
	arg  []byte
	done chan batchItemOutcome
	gone atomic.Bool
}

type batchItemOutcome struct {
	reply envelopeReply
	err   error
}

// runBatched routes an admitted plain/secure request through the ecall
// batcher instead of a singleton "request" ecall. The caller still parks
// in await() for its final outcome; only the boundary crossing is shared.
func (pl *pipelineRuntime) runBatched(ctx context.Context, req envelope) (envelopeReply, error) {
	arg, err := json.Marshal(req)
	if err != nil {
		return envelopeReply{}, err
	}
	item := &batchItem{arg: arg, done: make(chan batchItemOutcome, 1)}
	submitStart := time.Now()
	select {
	case pl.submitQ <- item:
	case <-ctx.Done():
		return envelopeReply{}, fmt.Errorf("proxy: batch submit: %w", ctx.Err())
	case <-pl.stop:
		return envelopeReply{}, fmt.Errorf("proxy: pipeline stopped")
	}
	select {
	case out := <-item.done:
		// The submit stage measures the batcher hold: queue wait plus
		// group-commit window plus the shared stage-1 crossing.
		pl.p.trusted.stages.Since(obs.StageSubmit, submitStart)
		return out.reply, out.err
	case <-ctx.Done():
		pl.forsake(item)
		return envelopeReply{}, fmt.Errorf("proxy: batched request: %w", ctx.Err())
	case <-pl.stop:
		pl.forsake(item)
		return envelopeReply{}, fmt.Errorf("proxy: pipeline stopped")
	}
}

// forsake marks a batch item whose caller stopped waiting, then drains an
// outcome that raced in. Both the forsaking caller and the delivering
// batcher attempt the same drain after observing gone; the buffered
// channel holds at most one outcome, so exactly one side wins it and owns
// abandoning the parked entry — the other side's receive simply misses.
func (pl *pipelineRuntime) forsake(item *batchItem) {
	item.gone.Store(true)
	select {
	case out := <-item.done:
		if out.err == nil && out.reply.Pending != 0 {
			pl.abandonPending(out.reply.Pending)
		}
	default:
	}
}

// abandonPending abandons a parked id on behalf of a caller that stopped
// waiting before its batched stage-1 outcome arrived. The fresh channel
// can never hold a delivery (no waiter was ever registered for it);
// abandon's unclaimed-stash check covers an outcome that already landed.
func (pl *pipelineRuntime) abandonPending(id uint64) {
	pl.abandon(id, make(chan pendingOutcome, 1))
}

// batcherLoop is group commit at the ecall seam: the first queued request
// is taken blocking, whatever else is already queued is drained
// opportunistically, and only a system that shows depth earns a
// BatchWindow wait toward a full batch. Depth is the admission gauge, not
// the instantaneous queue: more requests admitted than collected means
// concurrency is present — submissions are en route or will be the moment
// a completion lands — even when the scheduler hands them over one at a
// time (on a small core count the queue practically never shows two
// waiters at once, yet the load is there). A genuinely idle proxy (sole
// request in flight) submits immediately and pays no batching latency; a
// loaded one coalesces until BatchMax entries or BatchWindow, whichever
// first. The batcher is deliberately a single goroutine: while its batch
// ecall runs, newly admitted requests pile into submitQ, so the next
// batch is naturally fuller — load, not a tuning knob, decides the
// amortization.
func (pl *pipelineRuntime) batcherLoop() {
	defer pl.workers.Done()
	for {
		var first *batchItem
		select {
		case <-pl.stop:
			return
		case first = <-pl.submitQ:
		}
		batch := append(make([]*batchItem, 0, pl.batchMax), first)
	drain:
		for len(batch) < pl.batchMax {
			select {
			case it := <-pl.submitQ:
				batch = append(batch, it)
			default:
				break drain
			}
		}
		if len(batch) < pl.batchMax && pl.batchWindow > 0 &&
			(len(batch) > 1 || pl.inFlight() > len(batch)) {
			timer := time.NewTimer(pl.batchWindow)
		fill:
			for len(batch) < pl.batchMax {
				select {
				case it := <-pl.submitQ:
					batch = append(batch, it)
				case <-timer.C:
					break fill
				case <-pl.stop:
					break fill
				}
			}
			timer.Stop()
		}
		pl.dispatchBatch(batch)
	}
}

// dispatchBatch submits one request batch through the vectorized ecall
// and routes per-entry replies back to the queued callers. A failed batch
// ecall (enclave destroyed mid-flight) errors every entry — a queued
// caller is never left parked.
func (pl *pipelineRuntime) dispatchBatch(batch []*batchItem) {
	pl.bstats.record(len(batch))
	blobs := make([][]byte, len(batch))
	for i, it := range batch {
		blobs[i] = it.arg
	}
	out, err := pl.p.encl.ECall(context.Background(), "request-batch", encodeBatch(blobs))
	if err != nil {
		pl.failBatch(batch, err)
		return
	}
	replies, err := decodeBatch(out)
	if err != nil || len(replies) != len(batch) {
		pl.failBatch(batch, fmt.Errorf("proxy: bad batch reply: %v", err))
		return
	}
	for i, it := range batch {
		var entry batchItemReply
		var outc batchItemOutcome
		if err := json.Unmarshal(replies[i], &entry); err != nil {
			outc.err = fmt.Errorf("proxy: bad batch entry reply: %w", err)
		} else if entry.Err != "" {
			outc.err = fmt.Errorf("%s", entry.Err)
		} else if err := json.Unmarshal(entry.Reply, &outc.reply); err != nil {
			outc.err = fmt.Errorf("proxy: bad batch entry reply: %w", err)
		}
		pl.deliverBatchItem(it, outc)
	}
}

func (pl *pipelineRuntime) failBatch(batch []*batchItem, err error) {
	for _, it := range batch {
		pl.deliverBatchItem(it, batchItemOutcome{err: err})
	}
}

// deliverBatchItem hands one entry's stage-1 outcome to its queued
// caller, then re-checks the gone flag: a caller that forsook the item
// concurrently may have missed this delivery, in which case this side
// drains it and abandons the parked entry (see forsake for the
// exactly-one-consumer argument).
func (pl *pipelineRuntime) deliverBatchItem(it *batchItem, out batchItemOutcome) {
	it.done <- out
	if it.gone.Load() {
		select {
		case late := <-it.done:
			if late.err == nil && late.reply.Pending != 0 {
				pl.abandonPending(late.reply.Pending)
			}
		default:
		}
	}
}

// batchStats tracks batched boundary crossings: a total counter (request
// plus resume batches) and an occupancy histogram over request batches —
// how many requests shared one transition, the distribution BatchWindow
// trades latency against.
type batchStats struct {
	submitted atomic.Uint64
	mu        sync.Mutex
	occ       []uint64 // index = request-batch occupancy
}

func newBatchStats(max int) *batchStats {
	return &batchStats{occ: make([]uint64, max+1)}
}

func (bs *batchStats) record(n int) {
	bs.submitted.Add(1)
	if n >= len(bs.occ) {
		n = len(bs.occ) - 1
	}
	bs.mu.Lock()
	bs.occ[n]++
	bs.mu.Unlock()
}

// percentiles returns the request-batch occupancy p50/p95 (0 when no
// request batch has been submitted yet).
func (bs *batchStats) percentiles() (p50, p95 float64) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var total uint64
	for _, c := range bs.occ {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	pct := func(p float64) float64 {
		target := uint64(math.Ceil(p / 100 * float64(total)))
		if target < 1 {
			target = 1
		}
		var cum uint64
		for i, c := range bs.occ {
			cum += c
			if cum >= target {
				return float64(i)
			}
		}
		return float64(len(bs.occ) - 1)
	}
	return pct(50), pct(95)
}
