package proxy

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Tests for the in-enclave answer tier wired through the proxy: probe
// order (cache → index → upstream), rephrased-query hits on the sync and
// async paths, and the extended EPC invariant (heap == history + cache +
// index) under concurrent churn.

func TestIndexServesRephrasedQueries(t *testing.T) {
	st := newTestStack(t, func(c *Config) { c.IndexBytes = 1 << 20 })
	first := plainSearch(t, st.proxy.URL(), "chicken recipe oven baking")
	if len(first) == 0 {
		t.Fatal("seed query returned no results; nothing to index")
	}
	seen := len(st.engine.QueryLog())
	// Rephrased, not repeated: a different string (so no exact-key cache
	// could serve it) sharing the seed query's terms.
	second := plainSearch(t, st.proxy.URL(), "baking oven chicken recipe")
	if got := len(st.engine.QueryLog()); got != seen {
		t.Errorf("engine saw %d queries after rephrase, want %d (index hit)", got, seen)
	}
	if len(second) == 0 {
		t.Error("index hit returned no results")
	}
	s := st.proxy.Stats()
	if s.IndexHits != 1 {
		t.Errorf("index hits = %d, want 1", s.IndexHits)
	}
	if s.IndexDocs == 0 || s.IndexB == 0 {
		t.Errorf("index empty after insert: docs=%d bytes=%d", s.IndexDocs, s.IndexB)
	}
	if s.LocalHitRatio == 0 {
		t.Error("local-hit ratio is zero after an index hit")
	}
	assertEPCInvariant(t, st.proxy)
}

// An exact repeat with both tiers enabled is the cache's to serve: the
// index probe only runs after a cache miss.
func TestIndexProbeOrderCacheFirst(t *testing.T) {
	st := newTestStack(t, func(c *Config) {
		c.CacheBytes = 1 << 20
		c.IndexBytes = 1 << 20
	})
	plainSearch(t, st.proxy.URL(), "mortgage refinance rates")
	plainSearch(t, st.proxy.URL(), "mortgage refinance rates")
	s := st.proxy.Stats()
	if s.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1 (exact repeat)", s.CacheHits)
	}
	if s.IndexHits != 0 {
		t.Errorf("index hits = %d, want 0 (cache answered first)", s.IndexHits)
	}
	// One cache miss (the seed), zero probed queries lost: ratio counts
	// the repeat as a local answer.
	if s.LocalHitRatio != 0.5 {
		t.Errorf("local-hit ratio = %f, want 0.5", s.LocalHitRatio)
	}
	assertEPCInvariant(t, st.proxy)
}

// A probe below the confidence floor must fall through to the upstream
// pipeline rather than serve weak matches.
func TestIndexConfidenceFloorFallsThrough(t *testing.T) {
	st := newTestStack(t, func(c *Config) {
		c.IndexBytes = 1 << 20
		c.IndexMinScore = 1e9 // unreachable floor
	})
	plainSearch(t, st.proxy.URL(), "chicken recipe oven baking")
	seen := len(st.engine.QueryLog())
	plainSearch(t, st.proxy.URL(), "baking oven chicken recipe")
	if got := len(st.engine.QueryLog()); got == seen {
		t.Error("sub-floor probe served locally; want upstream fall-through")
	}
	s := st.proxy.Stats()
	if s.IndexHits != 0 {
		t.Errorf("index hits = %d, want 0 under an unreachable floor", s.IndexHits)
	}
	assertEPCInvariant(t, st.proxy)
}

func TestIndexServesRephrasedQueriesAsync(t *testing.T) {
	st := newTestStack(t, func(c *Config) {
		c.IndexBytes = 1 << 20
		c.AsyncOcalls = true
	})
	if _, err := st.proxy.ServeQuery(context.Background(), "flights paris hotel resort"); err != nil {
		t.Fatal(err)
	}
	seen := len(st.engine.QueryLog())
	results, err := st.proxy.ServeQuery(context.Background(), "resort hotel paris flights")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.engine.QueryLog()); got != seen {
		t.Errorf("engine saw %d queries after rephrase, want %d (async index hit)", got, seen)
	}
	if len(results) == 0 {
		t.Error("async index hit returned no results")
	}
	s := st.proxy.Stats()
	if s.IndexHits != 1 {
		t.Errorf("index hits = %d, want 1", s.IndexHits)
	}
	assertEPCInvariant(t, st.proxy)
}

// The satellite churn test: insert/evict/expire under concurrent clients
// with a deliberately tiny index (every insert evicts) and a short TTL
// (expiry interleaves with live probes), sampling the extended EPC
// invariant at every step while traffic is in flight. Run with -race.
func TestIndexChurnInvariantUnderConcurrentSessions(t *testing.T) {
	st := newTestStack(t, func(c *Config) {
		c.CacheBytes = 16 << 10
		c.CacheTTL = 25 * time.Millisecond
		c.IndexBytes = 8 << 10
		c.IndexTTL = 20 * time.Millisecond
	})
	topics := []string{
		"chicken recipe oven", "mortgage loan rates", "playoff scores roster",
		"flights hotel paris", "garden roses compost", "laptop wireless router",
	}
	const workers = 6
	const rounds = 10
	const perRound = 4

	// Each round runs the workers concurrently, then checks the invariant
	// at the quiesce barrier: the gauges in Stats are read independently,
	// so only a barrier gives a consistent snapshot — every round still
	// interleaves inserts, evictions, and TTL expiries under -race, and
	// the invariant must come back exact after each interleaving.
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perRound; i++ {
					// Repeat-heavy mix: mostly topic repeats/rephrases
					// (index and cache churn), some distinct queries
					// (evictions).
					q := topics[(w+i+r)%len(topics)]
					if (w+i)%5 == 0 {
						q = fmt.Sprintf("%s variant %d %d %d", q, w, i, r)
					}
					if _, err := st.proxy.ServeQuery(context.Background(), q); err != nil {
						t.Errorf("worker %d query %d: %v", w, i, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		assertEPCInvariant(t, st.proxy)
		if r%3 == 0 {
			time.Sleep(25 * time.Millisecond) // let TTLs lapse between rounds
		}
	}

	s := st.proxy.Stats()
	if s.IndexB > 8<<10 {
		t.Errorf("index bytes %d exceed the configured bound", s.IndexB)
	}
	assertEPCInvariant(t, st.proxy)
}
