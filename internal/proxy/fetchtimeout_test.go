package proxy

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for Config.FetchTimeout: the async fetcher's per-exchange read
// deadline. An upstream that accepts connections but never responds used
// to pin an async worker until a hedge winner, caller abandonment, or
// shutdown cancelled the fetch; with a timeout set it fails fast and
// counts against the upstream's breaker.

// startBlackholeUpstream listens and accepts (reading the request so the
// client's write succeeds) but never writes a byte back. Returns the
// address and an accepted-connection counter.
func startBlackholeUpstream(t *testing.T) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var accepted atomic.Int64
	done := make(chan struct{})
	t.Cleanup(func() { close(done); _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					select {
					case <-done:
						return
					default: // swallow the request, answer nothing
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), &accepted
}

func TestFetchTimeoutFailsHungUpstream(t *testing.T) {
	addr, accepted := startBlackholeUpstream(t)
	p, err := New(Config{
		K:            1,
		Seed:         1,
		Engines:      []EngineSpec{{Host: addr}},
		AsyncOcalls:  true,
		FetchTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	start := time.Now()
	_, err = p.ServeQuery(context.Background(), "query into the void")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against a never-responding upstream succeeded")
	}
	if !strings.Contains(err.Error(), "read response") {
		t.Fatalf("error %v does not name the read phase", err)
	}
	// The deadline, not a caller context or shutdown, must have fired:
	// well above the timeout, far below the dial timeout.
	if elapsed < 100*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("failed after %v, want ~150ms deadline", elapsed)
	}
	if accepted.Load() == 0 {
		t.Fatal("upstream never accepted: the test exercised the dial path, not the read deadline")
	}
	s := p.Stats()
	if len(s.Upstreams) != 1 || s.Upstreams[0].Failures == 0 {
		t.Fatalf("timeout not counted against the upstream breaker: %+v", s.Upstreams)
	}
	assertEPCInvariant(t, p)
}

// TestFetchTimeoutFailsOverToHealthyUpstream: with a hung and a healthy
// upstream, the deadline turns the black hole into an ordinary failing
// upstream — requests fail over and the breaker eventually excludes it.
func TestFetchTimeoutFailsOverToHealthyUpstream(t *testing.T) {
	hung, _ := startBlackholeUpstream(t)
	_, srv := newDelayEngine(t, 0)
	p, err := New(Config{
		K:    1,
		Seed: 1,
		// Weight the black hole so the fan-out keeps picking it first.
		Engines:               []EngineSpec{{Host: hung, Weight: 4}, {Host: srv.Addr(), Weight: 1}},
		AsyncOcalls:           true,
		FetchTimeout:          100 * time.Millisecond,
		UpstreamFailThreshold: 2,
		UpstreamCooldown:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	for i := 0; i < 8; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("failover query %d", i)); err != nil {
			t.Fatalf("query %d: %v (the healthy upstream should have answered)", i, err)
		}
	}
	s := p.Stats()
	var hungStats, liveStats UpstreamStats
	for _, u := range s.Upstreams {
		if u.Host == hung {
			hungStats = u
		} else {
			liveStats = u
		}
	}
	if hungStats.Failures == 0 {
		t.Fatalf("hung upstream recorded no failures: %+v", s.Upstreams)
	}
	if !hungStats.CoolingDown {
		t.Fatalf("hung upstream's breaker never opened: %+v", hungStats)
	}
	if liveStats.Served == 0 {
		t.Fatalf("healthy upstream served nothing: %+v", s.Upstreams)
	}
	assertEPCInvariant(t, p)
}

func TestFetchTimeoutConfigValidation(t *testing.T) {
	_, srv := newDelayEngine(t, 0)
	if _, err := New(Config{
		K: 1, Engines: []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true, FetchTimeout: -time.Second,
	}); err == nil {
		t.Fatal("negative FetchTimeout accepted")
	}
	// FetchTimeout now covers the blocking path too (the ocallConn grew
	// real read deadlines), so a sync config with a timeout is valid.
	p, err := New(Config{
		K: 1, Engines: []EngineSpec{{Host: srv.Addr()}},
		FetchTimeout: time.Second,
	})
	if err != nil {
		t.Fatalf("FetchTimeout on the blocking path rejected: %v", err)
	}
	p.Crash()
}

// TestFetchTimeoutFailsHungUpstreamBlockingPath is the sync-path mirror of
// TestFetchTimeoutFailsHungUpstream: without AsyncOcalls the same deadline
// must unpin the TCS (the blocking path used to hang forever here).
func TestFetchTimeoutFailsHungUpstreamBlockingPath(t *testing.T) {
	addr, accepted := startBlackholeUpstream(t)
	p, err := New(Config{
		K:            1,
		Seed:         1,
		Engines:      []EngineSpec{{Host: addr}},
		FetchTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	start := time.Now()
	_, err = p.ServeQuery(context.Background(), "query into the void")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against a never-responding upstream succeeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("failed after %v, want ~150ms deadline", elapsed)
	}
	if accepted.Load() == 0 {
		t.Fatal("upstream never accepted: the test exercised the dial path, not the read deadline")
	}
	s := p.Stats()
	if len(s.Upstreams) != 1 || s.Upstreams[0].Failures == 0 {
		t.Fatalf("timeout not counted against the upstream breaker: %+v", s.Upstreams)
	}
	assertEPCInvariant(t, p)
}
