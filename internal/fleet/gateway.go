package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"xsearch/internal/core"
	"xsearch/internal/obs"
	"xsearch/internal/proxy"
	"xsearch/internal/serve"
)

// --- rendezvous (HRW) routing ---

// hrwScore ranks one shard for one routing key. Rendezvous hashing gives
// every (key, shard) pair an independent score; the key routes to its
// highest-scoring live shard, and when that shard dies the key falls to
// its next-highest — only the dead shard's keys move, with no ring state
// to rebalance.
func hrwScore(key, node string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(node))
	return h.Sum64()
}

// rank returns every shard ordered by descending HRW score for key: the
// preferred shard first, the failover candidates after. Callers still gate
// each candidate on availability. The ring is snapshotted, so a scale
// event mid-request at worst costs the request one failover hop.
func (g *Gateway) rank(key string) []*shard {
	out := g.list()
	if len(out) == 1 {
		return out
	}
	score := make(map[*shard]uint64, len(out))
	for _, sh := range out {
		score[sh] = hrwScore(key, sh.name)
	}
	sort.SliceStable(out, func(i, j int) bool { return score[out[i]] > score[out[j]] })
	return out
}

// sessionKey derives the HRW routing key of a new session from the
// client's channel offer — the one stable public value a session has
// before the enclave mints its ID. Hashing it (rather than using it raw)
// keeps key length bounded.
func sessionKey(offer json.RawMessage) string {
	sum := sha256.Sum256(offer)
	return "session:" + string(sum[:])
}

// --- session-routing table ---

// remember pins session to a shard, evicting the oldest pin when the
// table is full (mirroring the per-shard session tables' FIFO policy).
func (g *Gateway) remember(session string, sh *shard) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.sessions) >= g.cfg.MaxSessions && len(g.order) > 0 {
		oldest := g.order[0]
		g.order = g.order[1:]
		delete(g.sessions, oldest)
	}
	g.sessions[session] = sh
	g.order = append(g.order, session)
}

// lookup resolves a session to its pinned shard.
func (g *Gateway) lookup(session string) (*shard, bool) {
	g.mu.Lock()
	sh, ok := g.sessions[session]
	g.mu.Unlock()
	return sh, ok
}

// forget drops one session pin (its order entry is skipped at eviction).
func (g *Gateway) forget(session string) {
	g.mu.Lock()
	delete(g.sessions, session)
	g.mu.Unlock()
}

// dropShardSessions removes every session pinned to the given shard,
// returning how many were lost (their brokers re-attest onto live shards).
func (g *Gateway) dropShardSessions(sh *shard) int {
	g.mu.Lock()
	n := 0
	for s, pinned := range g.sessions {
		if pinned == sh {
			delete(g.sessions, s)
			n++
		}
	}
	g.mu.Unlock()
	g.sessionsLost.Add(uint64(n))
	return n
}

// ShardOf reports which shard index a session is currently pinned to.
func (g *Gateway) ShardOf(session string) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sh, ok := g.sessions[session]
	if !ok {
		return 0, false
	}
	return sh.index, true
}

// --- request routing ---

// ServeQuery runs one plain query on the fleet, bypassing the HTTP front
// (the §6.3-style capacity path). The query routes to its HRW shard —
// identical queries always hit the same shard, so per-shard caches and
// single-flight coalescing stay effective fleet-wide — and fails over down
// the rank order when a shard turns out to be dead.
func (g *Gateway) ServeQuery(ctx context.Context, query string) ([]core.Result, error) {
	g.plainRouted.Add(1)
	var lastErr error
	deviated := false
	// deviate counts this request as failed-over exactly once: the moment
	// it first routes past (or retries off) an unavailable shard. The
	// event carries only the avoided shard's index — never the query.
	deviate := func(sh *shard) {
		if !deviated {
			deviated = true
			g.failovers.Add(1)
			g.events.Append(obs.Event{Type: obs.EvFailover, Shard: sh.index})
		}
	}
	for _, sh := range g.rank("q:" + query) {
		if !sh.available() {
			if !sh.draining.Load() {
				deviate(sh)
			}
			continue
		}
		results, err := sh.proxy.ServeQuery(ctx, query)
		if err == nil {
			return results, nil
		}
		lastErr = err
		if sh.proxy.Healthy() {
			// The shard is fine; the failure is the request's own (engine
			// down, bad query). Retrying siblings would only triple it.
			g.gwErrors.Add(1)
			return nil, err
		}
		g.noteDead(sh)
		deviate(sh)
	}
	if lastErr == nil {
		lastErr = ErrNoLiveShard
	}
	g.gwErrors.Add(1)
	return nil, lastErr
}

// Handshake establishes an attested session on the offer's HRW shard and
// pins the resulting session ID to it, failing over down the rank order if
// the preferred shard is dead.
func (g *Gateway) Handshake(ctx context.Context, offer json.RawMessage, nonce []byte) (*proxy.HandshakeResponse, error) {
	g.handshakes.Add(1)
	key := sessionKey(offer)
	var lastErr error
	deviated := false
	deviate := func(sh *shard) {
		if !deviated {
			deviated = true
			g.failovers.Add(1)
			g.events.Append(obs.Event{Type: obs.EvFailover, Shard: sh.index})
		}
	}
	for _, sh := range g.rank(key) {
		if !sh.available() {
			if !sh.draining.Load() {
				deviate(sh)
			}
			continue
		}
		resp, err := sh.proxy.Handshake(ctx, offer, nonce)
		if err == nil {
			g.remember(resp.Session, sh)
			return resp, nil
		}
		lastErr = err
		if sh.proxy.Healthy() {
			g.gwErrors.Add(1)
			return nil, err
		}
		g.noteDead(sh)
		deviate(sh)
	}
	if lastErr == nil {
		lastErr = ErrNoLiveShard
	}
	g.gwErrors.Add(1)
	return nil, lastErr
}

// Secure routes one sealed record to the session's pinned shard. The
// channel keys live only inside that shard's enclave, so there is no
// failing over a secure request: if the shard is gone the session is gone,
// and the error tells the broker to re-attest (its normal recovery).
// Draining shards still serve their established sessions.
func (g *Gateway) Secure(ctx context.Context, session string, record []byte) ([]byte, error) {
	g.secureRouted.Add(1)
	sh, ok := g.lookup(session)
	if !ok {
		g.gwErrors.Add(1)
		return nil, ErrUnknownSession
	}
	if !sh.live() {
		// noteDead drops the shard's pins only on the first observation;
		// forget covers the case where the shard was already retired but
		// this pin was re-added by a racing handshake.
		g.noteDead(sh)
		g.forget(session)
		g.gwErrors.Add(1)
		return nil, ErrShardDown
	}
	reply, err := sh.proxy.Secure(ctx, session, record)
	if err != nil {
		if !sh.proxy.Healthy() {
			g.noteDead(sh)
			g.forget(session)
			g.gwErrors.Add(1)
			return nil, ErrShardDown
		}
		g.gwErrors.Add(1)
		return nil, err
	}
	return reply, nil
}

// --- HTTP front ---

// maxBodyBytes caps request bodies on the client-facing handlers. The
// gateway runs in the untrusted host, but an unbounded body still lets a
// hostile client balloon host memory (json.Decode buffers what it reads)
// and starve the fronting process; every legitimate body — a channel
// offer, a sealed query record — is a few KB.
const maxBodyBytes = 1 << 20

// httpFront is the gateway's HTTP server state. The endpoint surface is
// exactly the proxy's (/search, /handshake, /secure, /stats, /healthz), so
// brokers and curl users point at a fleet the same way they point at a
// single node. The mux edge (see muxfront.go) rides the same mux at /mux
// for WebSocket clients plus an optional raw-TCP listener.
type httpFront struct {
	http  *http.Server
	front *serve.Server
}

func (g *Gateway) initHTTP() {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", g.handlePlainSearch)
	mux.HandleFunc("/handshake", g.handleHandshake)
	mux.HandleFunc("/secure", g.handleSecure)
	mux.HandleFunc("/mux", g.handleMuxUpgrade)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/events", g.handleEvents)
	mux.HandleFunc("/healthz", g.handleHealthz)
	g.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	g.front = serve.Wrap(g.http)
}

// Start serves the gateway front on addr ("127.0.0.1:0" picks a port). A
// second Start returns serve.ErrAlreadyStarted; fatal accept-loop errors
// surface on ServeErr.
func (g *Gateway) Start(addr string) error {
	if err := g.front.Start(addr); err != nil {
		if errors.Is(err, serve.ErrAlreadyStarted) {
			return fmt.Errorf("fleet: gateway %w", serve.ErrAlreadyStarted)
		}
		return fmt.Errorf("fleet: %w", err)
	}
	return nil
}

// ServeErr delivers at most one fatal HTTP-front serve error (the accept
// loop died after a successful Start). A gateway whose front is dead
// cannot recover; operators should treat it like a crash.
func (g *Gateway) ServeErr() <-chan error { return g.front.Err() }

// Addr returns the bound address after Start.
func (g *Gateway) Addr() string { return g.front.Addr() }

// URL returns the gateway base URL.
func (g *Gateway) URL() string { return "http://" + g.Addr() }

func (g *Gateway) handlePlainSearch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	results, err := g.ServeQuery(r.Context(), q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if results == nil {
		results = []core.Result{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(results)
}

func (g *Gateway) handleHandshake(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var body struct {
		Offer json.RawMessage `json:"offer"`
		Nonce []byte          `json:"nonce"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad handshake body", http.StatusBadRequest)
		return
	}
	resp, err := g.Handshake(r.Context(), body.Offer, body.Nonce)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (g *Gateway) handleSecure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var body proxy.SecureEnvelope
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad secure body", http.StatusBadRequest)
		return
	}
	record, err := g.Secure(r.Context(), body.Session, body.Record)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(proxy.SecureEnvelope{Session: body.Session, Record: record})
}

// handleStats serves the fleet snapshot, or — with ?shard=N — one
// shard's own node snapshot (the same JSON its /stats would serve).
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	if sh, selected, err := g.shardParam(r); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	} else if selected {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sh.proxy.Stats())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(g.Stats())
}

// shardParam resolves an optional ?shard=N selector to its live ring
// entry. selected reports whether the parameter was present.
func (g *Gateway) shardParam(r *http.Request) (sh *shard, selected bool, err error) {
	v := r.URL.Query().Get("shard")
	if v == "" {
		return nil, false, nil
	}
	idx, perr := strconv.Atoi(v)
	if perr != nil {
		return nil, true, fmt.Errorf("fleet: bad shard selector %q", v)
	}
	sh = g.shardByIndex(idx)
	if sh == nil {
		return nil, true, fmt.Errorf("fleet: unknown shard %d", idx)
	}
	if !sh.live() {
		return nil, true, fmt.Errorf("fleet: shard %d is dead", idx)
	}
	return sh, true, nil
}

// handleHealthz reports fleet liveness: OK while at least one shard can
// take new work.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	for _, sh := range g.list() {
		if sh.available() {
			w.WriteHeader(http.StatusOK)
			return
		}
	}
	http.Error(w, ErrNoLiveShard.Error(), http.StatusServiceUnavailable)
}
