package searchengine

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func smallCorpus() []Document {
	return []Document{
		{ID: 1, URL: "http://a.com/1", Title: "red sports car", Snippet: "fast red sports car engine horsepower"},
		{ID: 2, URL: "http://b.com/2", Title: "blue sailing boat", Snippet: "sailing boat harbor anchor blue water"},
		{ID: 3, URL: "http://c.com/3", Title: "chicken recipe", Snippet: "easy chicken recipe dinner oven baked"},
		{ID: 4, URL: "http://d.com/4", Title: "car repair", Snippet: "engine repair mechanic brakes car garage"},
		{ID: 5, URL: "http://e.com/5", Title: "chocolate dessert recipe", Snippet: "chocolate cake dessert recipe baking sugar"},
	}
}

func TestSearchBasic(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	results := idx.Search("red car", 10)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if results[0].URL != "http://a.com/1" {
		t.Errorf("top result = %s, want a.com (red car doc)", results[0].URL)
	}
	// Scores non-increasing.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Error("scores not sorted")
		}
	}
}

func TestSearchNoMatch(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	if got := idx.Search("zzzquark", 10); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
	if got := idx.Search("", 10); got != nil {
		t.Errorf("empty query: expected nil, got %v", got)
	}
	if got := idx.Search("car", 0); got != nil {
		t.Errorf("k=0: expected nil, got %v", got)
	}
}

func TestSearchTopK(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	if got := idx.Search("recipe", 1); len(got) != 1 {
		t.Errorf("k=1 returned %d results", len(got))
	}
}

func TestSearchDeterministic(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	a := idx.Search("car engine", 10)
	b := idx.Search("car engine", 10)
	if !reflect.DeepEqual(a, b) {
		t.Error("search not deterministic")
	}
}

func TestSplitOR(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"red car", []string{"red car"}},
		{"red car OR blue boat", []string{"red car", "blue boat"}},
		{"a OR b OR c", []string{"a", "b", "c"}},
		{"a or b", []string{"a", "b"}},
		{"OR leading", []string{"leading"}},
		{"trailing OR", []string{"trailing"}},
		{"", nil},
		{"OR OR", nil},
	}
	for _, tt := range tests {
		got := SplitOR(tt.in)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("SplitOR(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestJoinSplitORRoundTrip(t *testing.T) {
	subs := []string{"red car", "chicken recipe", "sailing boat"}
	if got := SplitOR(JoinOR(subs)); !reflect.DeepEqual(got, subs) {
		t.Errorf("round trip = %v", got)
	}
}

func TestSearchORMergesSubqueries(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	merged := idx.SearchOR("red car OR chicken recipe", 3)
	if len(merged) == 0 {
		t.Fatal("no merged results")
	}
	// Results must include hits for both sub-queries.
	var sawCar, sawRecipe bool
	for _, r := range merged {
		if strings.Contains(r.Title, "car") {
			sawCar = true
		}
		if strings.Contains(r.Title, "recipe") {
			sawRecipe = true
		}
	}
	if !sawCar || !sawRecipe {
		t.Errorf("merged results missing a sub-query's hits: %+v", merged)
	}
	// No duplicate URLs.
	seen := map[string]struct{}{}
	for _, r := range merged {
		if _, dup := seen[r.URL]; dup {
			t.Errorf("duplicate URL %s", r.URL)
		}
		seen[r.URL] = struct{}{}
	}
}

func TestMergeResultListsInterleaves(t *testing.T) {
	l1 := []Result{{URL: "a1"}, {URL: "a2"}}
	l2 := []Result{{URL: "b1"}, {URL: "b2"}}
	got := MergeResultLists([][]Result{l1, l2}, 10)
	want := []string{"a1", "b1", "a2", "b2"}
	for i, r := range got {
		if r.URL != want[i] {
			t.Fatalf("merge order %v", got)
		}
	}
}

func TestMergeResultListsDedupAndTruncate(t *testing.T) {
	l1 := []Result{{URL: "x"}, {URL: "y"}}
	l2 := []Result{{URL: "x"}, {URL: "z"}}
	got := MergeResultLists([][]Result{l1, l2}, 2)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].URL != "x" || got[1].URL != "y" {
		t.Errorf("got %v", got)
	}
}

func TestGenerateCorpus(t *testing.T) {
	docs := GenerateCorpus(CorpusConfig{DocsPerTopic: 5, Seed: 3})
	if len(docs) == 0 {
		t.Fatal("empty corpus")
	}
	ids := map[int]struct{}{}
	for _, d := range docs {
		if d.Title == "" || d.Snippet == "" || !strings.HasPrefix(d.URL, "http://") {
			t.Fatalf("malformed doc %+v", d)
		}
		if _, dup := ids[d.ID]; dup {
			t.Fatalf("duplicate doc ID %d", d.ID)
		}
		ids[d.ID] = struct{}{}
	}
	// Deterministic for the same seed.
	again := GenerateCorpus(CorpusConfig{DocsPerTopic: 5, Seed: 3})
	if !reflect.DeepEqual(docs, again) {
		t.Error("corpus generation not deterministic")
	}
}

// Searching for a document's own title must rank that document first (or at
// least retrieve it) — the self-retrieval property the accuracy experiment
// relies on.
func TestSelfRetrieval(t *testing.T) {
	docs := GenerateCorpus(CorpusConfig{DocsPerTopic: 20, Seed: 5})
	idx := BuildIndex(docs)
	hits := 0
	for i := 0; i < 50; i++ {
		d := docs[i*len(docs)/50]
		results := idx.Search(d.Title, 20)
		for _, r := range results {
			if r.URL == d.URL {
				hits++
				break
			}
		}
	}
	if hits < 45 {
		t.Errorf("self-retrieval only %d/50", hits)
	}
}

func TestSearchORPropertySubsetOfUnion(t *testing.T) {
	idx := BuildIndex(smallCorpus())
	queries := []string{"red car", "chicken recipe", "sailing boat", "chocolate dessert"}
	f := func(aIdx, bIdx uint8) bool {
		qa := queries[int(aIdx)%len(queries)]
		qb := queries[int(bIdx)%len(queries)]
		merged := idx.SearchOR(qa+" OR "+qb, 5)
		union := map[string]struct{}{}
		for _, r := range idx.Search(qa, 5) {
			union[r.URL] = struct{}{}
		}
		for _, r := range idx.Search(qb, 5) {
			union[r.URL] = struct{}{}
		}
		for _, r := range merged {
			if _, ok := union[r.URL]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
