package xsearch_test

// One benchmark per figure of the paper's evaluation, plus the ablations
// called out in DESIGN.md. Each bench regenerates a scaled-down version of
// its experiment per iteration; cmd/xsearch-bench runs the full-size
// versions and prints the tables recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"xsearch/internal/experiments"
	"xsearch/internal/proxy"
	"xsearch/internal/searchengine"
)

// benchFixture is built once: the dataset and attack index are shared by
// every figure bench.
var (
	benchFixtureOnce sync.Once
	benchFixture     *experiments.Fixture
	benchFixtureErr  error
)

func getBenchFixture(b *testing.B) *experiments.Fixture {
	b.Helper()
	benchFixtureOnce.Do(func() {
		benchFixture, benchFixtureErr = experiments.NewFixture(experiments.FixtureConfig{
			Users: 80, MeanQueries: 150, ActiveUsers: 50, Seed: 1,
		})
	})
	if benchFixtureErr != nil {
		b.Fatal(benchFixtureErr)
	}
	return benchFixture
}

// BenchmarkFig1FakeQueryRealism regenerates Figure 1: the CCDF of maximum
// similarity between generated fake queries (PEAS co-occurrence, TMN RSS,
// X-Search real past queries) and the real query log.
func BenchmarkFig1FakeQueryRealism(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(f, experiments.Fig1Config{Fakes: 300, Points: 21, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.XSearchMedian < 0.999 {
			b.Fatalf("X-Search fake median similarity %f", res.XSearchMedian)
		}
	}
}

// BenchmarkFig3ReIdentification regenerates Figure 3: SimAttack
// re-identification rate versus k for X-Search and PEAS.
func BenchmarkFig3ReIdentification(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(f, experiments.Fig3Config{MaxK: 7, TestQueries: 150})
		if err != nil {
			b.Fatal(err)
		}
		if res.XSearch[7] > res.RateAtK0 {
			b.Fatalf("obfuscation raised the re-identification rate")
		}
	}
}

// BenchmarkFig4Accuracy regenerates Figure 4: precision/recall of the
// filtered results versus k under the paper's split-and-merge methodology.
func BenchmarkFig4Accuracy(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(f, experiments.Fig4Config{
			MaxK: 7, Queries: 30, TopN: 20, DocsPerTopic: 60, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Recall[0] < 0.5 {
			b.Fatalf("k=0 recall %f", res.Recall[0])
		}
	}
}

// BenchmarkFig5Throughput regenerates Figure 5: the latency/throughput
// sweep over the X-Search proxy, the PEAS chain and Tor circuits (echo
// configurations, isolating proxy capacity).
func BenchmarkFig5Throughput(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(f, experiments.Fig5Config{
			XSearchRates:     []float64{2000, 8000},
			PEASRates:        []float64{500, 2000},
			TorRates:         []float64{50, 200},
			Duration:         300 * time.Millisecond,
			Workers:          32,
			MaxP50:           2 * time.Second,
			TorHopDelay:      500 * time.Microsecond,
			TorRelayCellRate: 2000,
			Seed:             1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points["X-Search"]) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFig6Memory regenerates Figure 6: history-store occupancy versus
// stored queries against the 90 MB EPC line.
func BenchmarkFig6Memory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(experiments.Fig6Config{
			MaxQueries: 100000, Checkpoints: 10, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.FitsEPC {
			b.Fatal("history exceeded EPC")
		}
	}
}

// BenchmarkFig7EndToEnd regenerates Figure 7: the CDF of end-to-end search
// round-trip time for Direct, X-Search (k=3) and Tor over the WAN model
// (time-compressed).
func BenchmarkFig7EndToEnd(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(f, experiments.Fig7Config{
			Queries:      15,
			K:            3,
			EngineMedian: 150 * time.Millisecond,
			Scale:        0.02,
			Circuits:     3,
			Points:       10,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Median["Tor"] <= res.Median["Direct"] {
			b.Fatal("latency ordering violated")
		}
	}
}

// BenchmarkAblationFakeSource compares re-identification under real-past-
// query fakes versus synthetic co-occurrence fakes in the same pipeline.
func BenchmarkAblationFakeSource(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationFakeSource(f, 3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFiltering measures what Algorithm 2 buys in precision.
func BenchmarkAblationFiltering(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationFiltering(f, 3, 20, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHistorySize sweeps the sliding-window bound x.
func BenchmarkAblationHistorySize(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHistorySize(f, 3, []int{100, 1000}, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTransitionCost isolates the enclave boundary-crossing
// overhead on proxy throughput.
func BenchmarkAblationTransitionCost(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationTransitionCost(3*time.Microsecond, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkEngineRoundTrip measures the proxy's engine round trip under
// one scaling-layer configuration: poolSize < 0 is the paper's original
// dial-per-request behaviour, poolSize > 0 enables in-enclave keep-alive
// reuse, and cacheBytes > 0 additionally serves repeats from the result
// cache. repeatQuery repeats one query per iteration (the cache-hit path);
// otherwise every iteration sends a distinct query.
func benchmarkEngineRoundTrip(b *testing.B, poolSize int, cacheBytes int64, repeatQuery bool) {
	b.Helper()
	engine := searchengine.NewEngine(searchengine.WithCorpus(
		searchengine.GenerateCorpus(searchengine.CorpusConfig{DocsPerTopic: 20, Seed: 1})))
	srv := searchengine.NewServer(engine)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	p, err := proxy.New(proxy.Config{
		K:          2,
		EngineHost: srv.Addr(),
		Seed:       1,
		PoolSize:   poolSize,
		CacheBytes: cacheBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = p.Shutdown(ctx)
	}()
	ctx := context.Background()
	// Warm the history (fake sources) and, for the repeat benchmark, the
	// cache entry itself.
	if _, err := p.ServeQuery(ctx, "bench warm query"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := "bench warm query"
		if !repeatQuery {
			q = fmt.Sprintf("bench distinct query %d", i)
		}
		if _, err := p.ServeQuery(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := p.Stats()
	// A cache-hit run never reaches the pool after warmup, so only the
	// uncached pooled variant must demonstrate reuse.
	if poolSize > 0 && cacheBytes == 0 && st.PoolReuses == 0 {
		b.Fatal("pooled benchmark reused no connections")
	}
	if repeatQuery && cacheBytes > 0 && st.CacheHits == 0 {
		b.Fatal("cached benchmark hit nothing")
	}
}

// BenchmarkEngineRoundTripCold is the pre-scaling-layer baseline: a fresh
// socket dialled per request.
func BenchmarkEngineRoundTripCold(b *testing.B) {
	benchmarkEngineRoundTrip(b, -1, 0, false)
}

// BenchmarkEngineRoundTripPooled reuses enclave-held keep-alive
// connections across requests.
func BenchmarkEngineRoundTripPooled(b *testing.B) {
	benchmarkEngineRoundTrip(b, 8, 0, false)
}

// BenchmarkEngineRoundTripCached serves a repeated query from the
// in-enclave result cache (no engine round trip after the first).
func BenchmarkEngineRoundTripCached(b *testing.B) {
	benchmarkEngineRoundTrip(b, 8, 4<<20, true)
}

// BenchmarkScalingAblation regenerates the full cold/pooled/cached
// comparison (the BENCH_baseline.json source) per iteration. It only
// measures — the 5x cached-speedup floor is enforced by
// TestRunConnScalingDemonstratesSpeedup, where a loaded machine fails a
// test instead of killing a whole benchmark run.
func BenchmarkScalingAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultConnScalingConfig()
		cfg.Queries, cfg.Repeats = 16, 2
		if _, err := experiments.RunConnScaling(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFanoutAblation regenerates the multi-engine comparison (the
// coalescing and failover halves of BENCH_baseline.json) per iteration.
// It only measures — the 2x coalescing floor is enforced by
// TestRunFanoutDemonstratesScaling.
func BenchmarkFanoutAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFanoutConfig()
		cfg.CoalesceWorkers, cfg.CoalesceRequests = 8, 4
		cfg.FailoverRequests = 48
		cfg.Cooldown = 50 * time.Millisecond
		if _, err := experiments.RunFanout(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnonymityBaselines regenerates the extension comparison of the
// four anonymity substrates (Dissent DC-net, RAC ring, Tor, X-Search).
func BenchmarkAnonymityBaselines(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAnonBench(f, experiments.AnonBenchConfig{
			GroupSize:    6,
			HopMedian:    20 * time.Millisecond,
			Scale:        0.1,
			Duration:     300 * time.Millisecond,
			Workers:      32,
			DissentRates: []float64{10, 50},
			RACRates:     []float64{25, 100},
			TorRates:     []float64{100, 400},
			XSearchRates: []float64{2000, 20000},
			MaxP50:       2 * time.Second,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Knee["X-Search"] <= res.Knee["Dissent"] {
			b.Fatal("ordering violated")
		}
	}
}
