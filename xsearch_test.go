package xsearch_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"xsearch"
)

// fullStack boots engine + proxy + attested client through the public API
// only — exactly what a downstream user writes.
func fullStack(t *testing.T) (*xsearch.Engine, *xsearch.Proxy, *xsearch.Client) {
	t.Helper()
	engine := xsearch.NewEngine(xsearch.WithCorpusSize(20), xsearch.WithEngineSeed(1))
	if err := engine.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = engine.Shutdown(ctx)
	})

	proxy, err := xsearch.NewProxy(
		xsearch.WithEngineHost(engine.Addr()),
		xsearch.WithFakeQueries(2),
		xsearch.WithProxySeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = proxy.Shutdown(ctx)
	})

	client, err := xsearch.NewClient(proxy.URL(),
		xsearch.WithTrustedMeasurement(proxy.Measurement()),
		xsearch.WithAttestationKey(proxy.AttestationKey()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	return engine, proxy, client
}

func TestPublicAPIEndToEnd(t *testing.T) {
	engine, proxy, client := fullStack(t)
	if !client.Connected() {
		t.Fatal("client not connected")
	}
	// Warm history, then search.
	for _, q := range []string{"mortgage rates", "garden roses"} {
		if _, err := client.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	results, err := client.Search(context.Background(), "chicken recipe dinner")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	// The curious engine never saw the bare query once history is warm.
	for _, l := range engine.QueryLog()[1:] {
		if l.Query == "chicken recipe dinner" {
			t.Error("engine saw unobfuscated query")
		}
		if !strings.Contains(l.Query, " OR ") {
			t.Errorf("engine saw non-OR query %q", l.Query)
		}
	}
	st := proxy.Stats()
	if st.Requests == 0 || st.HistoryLen == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPublicAPIAsyncPipeline runs the full attested stack over the async
// ocall pipeline with hedging armed: the secured search path must behave
// identically to the blocking one from a client's point of view.
func TestPublicAPIAsyncPipeline(t *testing.T) {
	engine := xsearch.NewEngine(xsearch.WithCorpusSize(20), xsearch.WithEngineSeed(1))
	if err := engine.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = engine.Shutdown(ctx)
	})
	proxy, err := xsearch.NewProxy(
		xsearch.WithEngineHost(engine.Addr()),
		xsearch.WithFakeQueries(2),
		xsearch.WithProxySeed(1),
		xsearch.WithAsyncOcalls(16),
		xsearch.WithHedging(50*time.Millisecond, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = proxy.Shutdown(ctx)
	})
	client, err := xsearch.NewClient(proxy.URL(),
		xsearch.WithTrustedMeasurement(proxy.Measurement()),
		xsearch.WithAttestationKey(proxy.AttestationKey()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"mortgage rates", "garden roses", "chicken recipe dinner"} {
		if _, err := client.Search(context.Background(), q); err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
	}
	st := proxy.Stats()
	if st.AsyncSubmitted == 0 {
		t.Error("async pipeline never engaged")
	}
	if st.Enclave.HeapBytes != st.HistoryB+st.CacheB+st.IndexB {
		t.Errorf("EPC invariant broken: heap=%d history=%d cache=%d",
			st.Enclave.HeapBytes, st.HistoryB, st.CacheB)
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := xsearch.NewProxy(xsearch.WithFakeQueries(-1), xsearch.WithEchoMode()); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := xsearch.NewProxy(); err == nil {
		t.Error("proxy without engine host accepted")
	}
	if _, err := xsearch.NewClient(""); err == nil {
		t.Error("client without URL accepted")
	}
}

func TestEchoModeProxyPublicAPI(t *testing.T) {
	proxy, err := xsearch.NewProxy(xsearch.WithEchoMode(), xsearch.WithProxySeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = proxy.Shutdown(ctx)
	}()
	client, err := xsearch.NewClient(proxy.URL(),
		xsearch.WithTrustedMeasurement(proxy.Measurement()),
		xsearch.WithAttestationKey(proxy.AttestationKey()),
		xsearch.WithResultCount(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	results, err := client.Search(context.Background(), "any query")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("echo mode returned %d results", len(results))
	}
}

func TestWrongMeasurementRejected(t *testing.T) {
	proxy, err := xsearch.NewProxy(xsearch.WithEchoMode(), xsearch.WithProxySeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = proxy.Shutdown(ctx)
	}()
	client, err := xsearch.NewClient(proxy.URL(),
		xsearch.WithTrustedMeasurement(xsearch.Measurement{0xBA, 0xD0}),
		xsearch.WithAttestationKey(proxy.AttestationKey()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(context.Background()); err == nil {
		t.Fatal("client connected to untrusted enclave")
	}
}
