package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"xsearch/internal/enclave"
	"xsearch/internal/securechannel"
)

// These tests exist to run under `go test -race`: they hammer the shared
// trusted state (session table, history, pool, cache) from many goroutines
// at once, well past the FIFO eviction thresholds, so any unsynchronized
// access surfaces as a race report rather than a lucky pass.

// churnClient performs one handshake directly through the "request" ecall
// (the paths the HTTP front exercises, without the HTTP overhead) and
// returns the established channel and session id.
func churnClient(p *Proxy) (*securechannel.Channel, string, error) {
	hs, err := securechannel.NewHandshake(securechannel.RoleClient)
	if err != nil {
		return nil, "", err
	}
	offerJSON, err := hs.Offer().Marshal()
	if err != nil {
		return nil, "", err
	}
	reply, err := p.ecall(context.Background(), envelope{Type: typeHandshake, Offer: offerJSON})
	if err != nil {
		return nil, "", err
	}
	serverOffer, err := securechannel.UnmarshalOffer(reply.Offer)
	if err != nil {
		return nil, "", err
	}
	channel, err := hs.Complete(serverOffer)
	if err != nil {
		return nil, "", err
	}
	return channel, reply.Session, nil
}

// TestConcurrentSessionChurn drives handshakes and secure queries from
// many goroutines against a session table far smaller than the offered
// load, so FIFO eviction runs concurrently with lookups and inserts.
// Evicted sessions must fail cleanly ("unknown session"), never corrupt
// the table.
func TestConcurrentSessionChurn(t *testing.T) {
	const (
		maxSessions = 8
		workers     = 16
		handshakes  = 20
	)
	p, err := New(Config{
		K:             1,
		EchoMode:      true,
		Seed:          1,
		MaxSessions:   maxSessions,
		EnclaveConfig: enclave.Config{TCSCount: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < handshakes; i++ {
				channel, session, err := churnClient(p)
				if err != nil {
					errs <- fmt.Errorf("worker %d handshake %d: %w", w, i, err)
					return
				}
				for j := 0; j < 3; j++ {
					pt, err := json.Marshal(secureRequest{Query: fmt.Sprintf("w%d q%d-%d", w, i, j)})
					if err != nil {
						errs <- err
						return
					}
					record, err := channel.Seal(pt)
					if err != nil {
						errs <- err
						return
					}
					// Under churn the session may already be evicted:
					// an "unknown session" error is the correct outcome,
					// any other failure mode is not.
					_, err = p.ecall(context.Background(), envelope{
						Type:    typeSecure,
						Session: session,
						Record:  record,
					})
					if err != nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	p.trusted.mu.Lock()
	sessions, order := len(p.trusted.sessions), len(p.trusted.order)
	p.trusted.mu.Unlock()
	if sessions > maxSessions {
		t.Errorf("session table holds %d > max %d", sessions, maxSessions)
	}
	if sessions != order {
		t.Errorf("session table (%d) and FIFO order (%d) diverged", sessions, order)
	}
}

// TestConcurrentPlainAndHandshake mixes plain queries (history writes,
// pool checkouts would happen here if not echo) with handshakes so the
// obfuscator and session table contend at once.
func TestConcurrentPlainAndHandshake(t *testing.T) {
	p, err := New(Config{
		K:             2,
		EchoMode:      true,
		Seed:          1,
		MaxSessions:   4,
		EnclaveConfig: enclave.Config{TCSCount: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.encl.Destroy()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("plain w%d i%d", w, i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, _, err := churnClient(p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := p.trusted.obfuscator.History().Len(); got == 0 {
		t.Error("history empty after concurrent plain queries")
	}
}
