package fleet

import (
	"context"
	"fmt"
	mrand "math/rand/v2"
	"strings"
	"testing"
	"time"

	"xsearch/internal/core"
	"xsearch/internal/dataset"
	"xsearch/internal/proxy"
	"xsearch/internal/simattack"
)

// TestDecideScaleTable drives the pure decision core through every policy
// behaviour — thresholds, hysteresis, cooldown, min/max clamps, the
// k-anonymity floor, and coldest-shard selection — without touching an
// enclave.
func TestDecideScaleTable(t *testing.T) {
	pol := AutoscalePolicy{
		UpOccupancy:   0.75,
		DownOccupancy: 0.25,
		UpLatencyP95:  100 * time.Millisecond,
		UpEPCFraction: 0.85,
		Interval:      50 * time.Millisecond,
		Cooldown:      time.Second,
	}
	// A quiet shard: nothing near any threshold.
	quiet := func(idx int) ShardLoad {
		return ShardLoad{Index: idx, Occupancy: 0.1, LatencyP95: 10 * time.Millisecond,
			EPCFraction: 0.1, HistoryLen: 100, HistoryCapacity: 100000, Sessions: 2}
	}

	cases := []struct {
		name       string
		policy     AutoscalePolicy
		sinceLast  time.Duration
		loads      []ShardLoad
		min, max   int
		wantAction ScaleAction
		wantTarget int
		wantReason string // substring
	}{
		{
			name: "no live shards", policy: pol, sinceLast: time.Hour,
			loads: nil, min: 1, max: 4,
			wantAction: ScaleNone, wantReason: "no live shards",
		},
		{
			name: "cooldown blocks even under pressure", policy: pol, sinceLast: 100 * time.Millisecond,
			loads: []ShardLoad{{Index: 0, Occupancy: 1.0}}, min: 1, max: 4,
			wantAction: ScaleNone, wantReason: "cooldown",
		},
		{
			name: "occupancy breach scales up", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), {Index: 1, Occupancy: 0.8, HistoryCapacity: 100000}}, min: 1, max: 4,
			wantAction: ScaleUp, wantReason: "occupancy",
		},
		{
			name: "p95 breach scales up", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), func() ShardLoad {
				l := quiet(1)
				l.LatencyP95 = 150 * time.Millisecond
				return l
			}()}, min: 1, max: 4,
			wantAction: ScaleUp, wantReason: "p95",
		},
		{
			name: "latency signal off ignores p95", policy: func() AutoscalePolicy {
				p := pol
				p.UpLatencyP95 = 0
				return p
			}(), sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), func() ShardLoad {
				l := quiet(1)
				l.LatencyP95 = time.Hour
				return l
			}()}, min: 1, max: 4,
			// The huge p95 neither triggers scale-up nor blocks the
			// idle-fleet scale-down: the signal is fully off.
			wantAction: ScaleDown, wantReason: "retiring coldest",
		},
		{
			name: "epc pressure scales up", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), func() ShardLoad {
				l := quiet(1)
				l.EPCFraction = 0.9
				return l
			}()}, min: 1, max: 4,
			wantAction: ScaleUp, wantReason: "epc pressure",
		},
		{
			name: "max clamp refuses scale-up", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{{Index: 0, Occupancy: 1.0, HistoryCapacity: 100000}, {Index: 1, Occupancy: 1.0, HistoryCapacity: 100000}}, min: 1, max: 2,
			wantAction: ScaleNone, wantReason: "at max",
		},
		{
			name: "hysteresis band holds steady", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), func() ShardLoad {
				l := quiet(1)
				l.Occupancy = 0.5 // between down (0.25) and up (0.75)
				return l
			}()}, min: 1, max: 4,
			wantAction: ScaleNone, wantReason: "steady",
		},
		{
			name: "all idle scales down", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), quiet(1)}, min: 1, max: 4,
			wantAction: ScaleDown, wantTarget: 0, wantReason: "retiring coldest",
		},
		{
			name: "min clamp refuses scale-down", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), quiet(1)}, min: 2, max: 4,
			wantAction: ScaleNone, wantReason: "at min",
		},
		{
			name: "lingering p95 tail blocks scale-down", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), func() ShardLoad {
				l := quiet(1)
				l.LatencyP95 = 60 * time.Millisecond // above UpLatencyP95/2
				return l
			}()}, min: 1, max: 4,
			wantAction: ScaleNone, wantReason: "p95",
		},
		{
			name: "epc pressure above the up bound scales up even when idle", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), func() ShardLoad {
				l := quiet(1)
				l.Occupancy = 0.0
				l.EPCFraction = 0.9
				return l
			}()}, min: 1, max: 4,
			// EPC pressure is ALSO an up signal, so with headroom it wins.
			wantAction: ScaleUp, wantReason: "epc pressure",
		},
		{
			name: "epc hysteresis blocks scale-down below the up bound", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{quiet(0), func() ShardLoad {
				l := quiet(1)
				l.EPCFraction = 0.5 // between up/2 (0.425) and up (0.85)
				return l
			}()}, min: 1, max: 4,
			// Idle, but a merge could roughly double a window's heap and
			// breach the up bound — the fleet must not flap back up.
			wantAction: ScaleNone, wantReason: "epc",
		},
		{
			name: "k-anonymity floor refuses overflowing merge", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{
				{Index: 0, Occupancy: 0.1, HistoryLen: 600, HistoryCapacity: 1000, Sessions: 0},
				{Index: 1, Occupancy: 0.1, HistoryLen: 700, HistoryCapacity: 1000, Sessions: 3},
			}, min: 1, max: 4,
			wantAction: ScaleNone, wantReason: "k-anonymity floor",
		},
		{
			name: "merge that fits passes the floor", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{
				{Index: 0, Occupancy: 0.1, HistoryLen: 200, HistoryCapacity: 1000, Sessions: 0},
				{Index: 1, Occupancy: 0.1, HistoryLen: 700, HistoryCapacity: 1000, Sessions: 3},
			}, min: 1, max: 4,
			wantAction: ScaleDown, wantTarget: 0, wantReason: "retiring coldest",
		},
		{
			name: "coldest = fewest sessions", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{
				{Index: 0, Occupancy: 0.05, HistoryLen: 10, HistoryCapacity: 100000, Sessions: 5},
				{Index: 1, Occupancy: 0.2, HistoryLen: 500, HistoryCapacity: 100000, Sessions: 1},
			}, min: 1, max: 4,
			wantAction: ScaleDown, wantTarget: 1,
		},
		{
			name: "sessions tie breaks on history then index", policy: pol, sinceLast: time.Hour,
			loads: []ShardLoad{
				{Index: 0, Occupancy: 0.1, HistoryLen: 500, HistoryCapacity: 100000, Sessions: 1},
				{Index: 1, Occupancy: 0.1, HistoryLen: 100, HistoryCapacity: 100000, Sessions: 1},
				{Index: 2, Occupancy: 0.1, HistoryLen: 100, HistoryCapacity: 100000, Sessions: 1},
			}, min: 1, max: 4,
			wantAction: ScaleDown, wantTarget: 1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := DecideScale(tc.policy, tc.sinceLast, tc.loads, tc.min, tc.max)
			if d.Action != tc.wantAction {
				t.Fatalf("action = %v, want %v (reason %q)", d.Action, tc.wantAction, d.Reason)
			}
			if d.Action == ScaleDown && d.Target != tc.wantTarget {
				t.Fatalf("target = %d, want %d (reason %q)", d.Target, tc.wantTarget, d.Reason)
			}
			if tc.wantReason != "" && !strings.Contains(d.Reason, tc.wantReason) {
				t.Fatalf("reason %q does not mention %q", d.Reason, tc.wantReason)
			}
		})
	}
}

// TestAutoscaleConfigValidation covers the policy and clamp rejections at
// fleet construction.
func TestAutoscaleConfigValidation(t *testing.T) {
	base := proxy.Config{K: 2, EchoMode: true, Seed: 5}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"inverted hysteresis", Config{Shards: 1, ShardConfig: base,
			Autoscale: &AutoscalePolicy{UpOccupancy: 0.3, DownOccupancy: 0.6}}},
		{"max below min", Config{Shards: 1, ShardsMin: 3, ShardsMax: 2, ShardConfig: base,
			Autoscale: &AutoscalePolicy{}}},
		{"negative latency bound", Config{Shards: 1, ShardConfig: base,
			Autoscale: &AutoscalePolicy{UpLatencyP95: -time.Second}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if g, err := New(tc.cfg); err == nil {
				_ = g.Shutdown(context.Background())
				t.Fatal("New accepted an invalid autoscale config")
			}
		})
	}
}

// TestScaleUpAndDownEndToEnd exercises the manual scale path: a spawned
// shard joins the HRW ring and serves, and a scale-down retires the
// coldest shard through the sealed handoff with its history preserved on
// the survivor and the EPC invariant intact.
func TestScaleUpAndDownEndToEnd(t *testing.T) {
	g, err := New(Config{
		Shards:         1,
		ShardsMin:      1,
		ShardsMax:      3,
		ShardConfig:    proxy.Config{K: 2, EchoMode: true, Seed: 5},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	ctx := context.Background()

	idx, err := g.ScaleUp(ctx)
	if err != nil {
		t.Fatalf("ScaleUp: %v", err)
	}
	if idx != 1 {
		t.Fatalf("new shard index = %d, want 1", idx)
	}
	if _, err := g.ScaleUp(ctx); err != nil {
		t.Fatalf("second ScaleUp: %v", err)
	}
	if _, err := g.ScaleUp(ctx); err == nil {
		t.Fatal("ScaleUp past ShardsMax should fail")
	}

	// Spread queries; every shard should see some (the ring rebalanced).
	total := 0
	for i := 0; i < 90; i++ {
		if _, err := g.ServeQuery(ctx, fmt.Sprintf("elastic query %d", i)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		total++
	}
	st := g.Stats()
	if st.CurrentShards != 3 || st.AliveShards != 3 || st.ScaleUps != 2 {
		t.Fatalf("after scale-up: current=%d alive=%d ups=%d", st.CurrentShards, st.AliveShards, st.ScaleUps)
	}
	for _, ss := range st.Shards {
		if ss.Proxy.HistoryLen == 0 {
			t.Fatalf("shard %d never served after rebalance: %+v", ss.Index, st.Shards)
		}
	}

	rep, err := g.ScaleDown(ctx)
	if err != nil {
		t.Fatalf("ScaleDown: %v", err)
	}
	post := g.Stats()
	if post.CurrentShards != 2 || post.ScaleDowns != 1 {
		t.Fatalf("after scale-down: current=%d downs=%d", post.CurrentShards, post.ScaleDowns)
	}
	histSum := 0
	for _, ss := range post.Shards {
		if ss.Index == rep.Shard {
			t.Fatalf("retired shard %d still in the ring", rep.Shard)
		}
		requireInvariant(t, fmt.Sprintf("post-scale-down shard %d", ss.Index), ss.Proxy)
		histSum += ss.Proxy.HistoryLen
	}
	if histSum != total {
		t.Fatalf("history lost in retirement: %d entries across survivors, want %d", histSum, total)
	}
	if rep.MigratedQueries == 0 {
		t.Fatalf("retirement migrated nothing: %+v", rep)
	}
}

// TestAutoscalerRetiresIdleFleet runs the real autoscaler loop: an idle
// two-shard fleet with min 1 must shrink itself to one shard (and then
// hold steady at the min clamp).
func TestAutoscalerRetiresIdleFleet(t *testing.T) {
	g, err := New(Config{
		Shards:    2,
		ShardsMin: 1,
		ShardsMax: 2,
		Autoscale: &AutoscalePolicy{
			Interval: 10 * time.Millisecond,
			Cooldown: 20 * time.Millisecond,
		},
		ShardConfig:    proxy.Config{K: 2, EchoMode: true, Seed: 5},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := g.ServeQuery(ctx, fmt.Sprintf("idle fleet query %d", i)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		st := g.Stats()
		if st.CurrentShards == 1 && st.ScaleDowns == 1 {
			// All 20 warm queries must have survived the retirement merge.
			if st.Shards[0].Proxy.HistoryLen != 20 {
				t.Fatalf("survivor history = %d, want 20", st.Shards[0].Proxy.HistoryLen)
			}
			requireInvariant(t, "autoscaled survivor", st.Shards[0].Proxy)
			// The loop must now report the min clamp, not keep retiring.
			waitSteady := time.Now().Add(time.Second)
			for time.Now().Before(waitSteady) {
				if d := g.Stats().LastScaleDecision; strings.Contains(d, "at min") {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Fatalf("autoscaler never settled at the min clamp: %q", g.Stats().LastScaleDecision)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("autoscaler never retired the idle shard: %+v", g.Stats())
}

// TestAutoscaleRetirementKeepsObfuscationEffective is the scale-down
// privacy regression: an autoscaler-initiated retirement (decision core →
// sealed drain handoff → ring removal) migrates one shard's history into
// its successor mid-session, and SimAttack re-identification against the
// merged fake pool must not improve over the successor's own pool — the
// same property the operator-drain test pins, now on the elastic path.
func TestAutoscaleRetirementKeepsObfuscationEffective(t *testing.T) {
	genCfg := dataset.DefaultGeneratorConfig()
	genCfg.Users, genCfg.MeanQueries, genCfg.Seed = 40, 60, 3
	gen, err := dataset.NewGenerator(genCfg)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	log := gen.Generate()
	train, test, err := log.Split(0.5)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	attack, err := simattack.New(train, simattack.DefaultAlpha)
	if err != nil {
		t.Fatalf("simattack: %v", err)
	}

	g, err := New(Config{
		Shards:         2,
		ShardConfig:    proxy.Config{K: 3, EchoMode: true, Seed: 9},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	ctx := context.Background()

	// Fill the shard histories, mirroring the HRW routing so the test
	// knows each enclave's exact window contents without opening blobs.
	trainQueries := train.Queries()
	if len(trainQueries) > 1200 {
		trainQueries = trainQueries[:1200]
	}
	mirrors := map[int][]string{}
	for _, q := range trainQueries {
		idx := g.rank("q:" + q)[0].index
		if _, err := g.ServeQuery(ctx, q); err != nil {
			t.Fatalf("fill query: %v", err)
		}
		mirrors[idx] = append(mirrors[idx], q)
	}
	if len(mirrors[0]) == 0 || len(mirrors[1]) == 0 {
		t.Fatalf("degenerate routing: mirror sizes %d/%d", len(mirrors[0]), len(mirrors[1]))
	}

	// Fire one autoscale decision against the idle fleet: the decision
	// core must choose ScaleDown and the tick must execute the retirement
	// through the production path.
	a := newAutoscaler(g, 1, 2, AutoscalePolicy{}.withDefaults())
	a.tick(time.Now())
	st := g.Stats()
	if st.ScaleDowns != 1 || st.CurrentShards != 1 {
		t.Fatalf("autoscaler tick did not retire a shard: downs=%d current=%d reason=%q",
			st.ScaleDowns, st.CurrentShards, st.LastScaleDecision)
	}
	survivor := st.Shards[0].Index
	retired := 1 - survivor
	if want := len(mirrors[0]) + len(mirrors[1]); st.Shards[0].Proxy.HistoryLen != want {
		t.Fatalf("survivor history %d, want %d (own + migrated)", st.Shards[0].Proxy.HistoryLen, want)
	}
	requireInvariant(t, "post-retirement survivor", st.Shards[0].Proxy)

	// Re-identification with the survivor's own pool versus the merged
	// pool the retirement produced.
	testLog := &dataset.Log{Records: test.Records}
	if len(testLog.Records) > 150 {
		testLog.Records = testLog.Records[:150]
	}
	rate := func(pool []string) float64 {
		h, err := core.NewHistory(len(pool) + 1)
		if err != nil {
			t.Fatalf("history: %v", err)
		}
		for _, q := range pool {
			h.Add(q)
		}
		rng := mrand.New(mrand.NewPCG(11, 17))
		return attack.EvaluateObfuscated(testLog, func(rec dataset.Record) simattack.Obfuscation {
			fakes := h.Sample(3, rng.IntN)
			pos := rng.IntN(len(fakes) + 1)
			subs := make([]string, 0, len(fakes)+1)
			subs = append(subs, fakes[:pos]...)
			subs = append(subs, rec.Query)
			subs = append(subs, fakes[pos:]...)
			return simattack.Obfuscation{Subqueries: subs, OriginalIndex: pos}
		})
	}
	preRate := rate(mirrors[survivor])
	postRate := rate(append(append([]string{}, mirrors[survivor]...), mirrors[retired]...))
	if postRate > preRate+0.05 {
		t.Fatalf("re-identification improved after autoscaled retirement: pre=%.3f post=%.3f", preRate, postRate)
	}
}

// TestScaleAfterShutdownRefused pins the teardown race: a manual scale
// operation arriving after (or during) Shutdown must be refused rather
// than spawn a shard the teardown snapshot will never destroy.
func TestScaleAfterShutdownRefused(t *testing.T) {
	g, err := New(Config{
		Shards:         1,
		ShardConfig:    proxy.Config{K: 2, EchoMode: true, Seed: 5},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := g.ScaleUp(ctx); err == nil {
		t.Fatal("ScaleUp after Shutdown accepted: the spawned shard would leak")
	}
	if _, err := g.ScaleDown(ctx); err == nil {
		t.Fatal("ScaleDown after Shutdown accepted")
	}
}

// TestScaleDownEnforcesKAnonymityFloor pins the execution-path floor: a
// retirement whose sealed merge would overflow the successor's history
// window is refused even when requested directly.
func TestScaleDownEnforcesKAnonymityFloor(t *testing.T) {
	g, err := New(Config{
		Shards:         2,
		ShardConfig:    proxy.Config{K: 2, EchoMode: true, Seed: 5, HistoryCapacity: 40},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	ctx := context.Background()
	// Fill both 40-entry windows well past half: any merge overflows.
	for i := 0; i < 120; i++ {
		if _, err := g.ServeQuery(ctx, fmt.Sprintf("floor query %d", i)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, err := g.ScaleDown(ctx); err == nil || !strings.Contains(err.Error(), "k-anonymity floor") {
		t.Fatalf("ScaleDown = %v, want k-anonymity floor refusal", err)
	}
	// The decision core must refuse for the same reason.
	d := DecideScale(AutoscalePolicy{}.withDefaults(), time.Hour, g.loadSignals(), 1, 2)
	if d.Action != ScaleNone || !strings.Contains(d.Reason, "k-anonymity floor") {
		t.Fatalf("DecideScale = %+v, want k-anonymity floor refusal", d)
	}
	if g.Stats().CurrentShards != 2 {
		t.Fatal("refused scale-down still removed a shard")
	}
}
