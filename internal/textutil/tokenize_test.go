package textutil

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"empty", "", []string{}},
		{"simple", "hello world", []string{"hello", "world"}},
		{"mixed case", "Hello WORLD", []string{"hello", "world"}},
		{"punctuation", "what's up, doc?", []string{"what", "s", "up", "doc"}},
		{"digits", "top 10 cars 2006", []string{"top", "10", "cars", "2006"}},
		{"operators", "cats OR dogs", []string{"cats", "or", "dogs"}},
		{"url", "www.example.com/page", []string{"www", "example", "com", "page"}},
		{"unicode", "café ÉCOLE", []string{"café", "école"}},
		{"only punct", "!!! --- ???", []string{}},
		{"leading trailing space", "  spaced  out  ", []string{"spaced", "out"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Tokenize(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenizeLowercaseProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTerms(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"stopwords removed", "the best of the cars", []string{"best", "car"}},
		{"stemming", "running runner runs", []string{"run", "runner", "run"}},
		{"short tokens dropped", "a b c dog", []string{"dog"}},
		{"empty", "", []string{}},
		{"all stopwords", "the of and", []string{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Terms(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Terms(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestUniqueTerms(t *testing.T) {
	got := UniqueTerms("dog dogs DOG cat")
	want := []string{"dog", "cat"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UniqueTerms = %v, want %v", got, want)
	}
}

func TestCommonWords(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want int
	}{
		{"identical", "red sports car", "red sports car", 3},
		{"partial", "red sports car", "blue sports car", 2},
		{"stem match", "running shoes", "best runs shoe", 2},
		{"disjoint", "red car", "blue boat", 0},
		{"stopwords ignored", "the car", "a car", 1},
		{"empty a", "", "car", 0},
		{"empty b", "car", "", 0},
		{"duplicates counted once", "car car car", "car", 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CommonWords(tt.a, tt.b); got != tt.want {
				t.Errorf("CommonWords(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCommonWordsSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return CommonWords(a, b) == CommonWords(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"car", "privacy", "enclave"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
	if StopwordCount() < 100 {
		t.Errorf("StopwordCount() = %d, want >= 100", StopwordCount())
	}
}
