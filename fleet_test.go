package xsearch_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"xsearch"
)

// fleetStack boots engine + 3-shard fleet + attested client through the
// public API only — exactly what a downstream user writes.
func fleetStack(t *testing.T) (*xsearch.Engine, *xsearch.Fleet, *xsearch.Client) {
	t.Helper()
	engine := xsearch.NewEngine(xsearch.WithCorpusSize(20), xsearch.WithEngineSeed(1))
	if err := engine.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = engine.Shutdown(ctx)
	})

	fleet, err := xsearch.NewFleet(
		xsearch.WithShardCount(3),
		xsearch.WithShardConfig(
			xsearch.WithEngines(xsearch.EngineSpec{Host: engine.Addr()}),
			xsearch.WithFakeQueries(2),
			xsearch.WithProxySeed(1),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = fleet.Shutdown(ctx)
	})

	client, err := xsearch.NewClient(fleet.URL(),
		xsearch.WithTrustedMeasurement(fleet.Measurement()),
		xsearch.WithAttestationKey(fleet.AttestationKey()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	return engine, fleet, client
}

// TestFleetPublicAPIEndToEnd drives the attested path through the gateway,
// survives a shard crash, and drains a shard — all via the public surface.
func TestFleetPublicAPIEndToEnd(t *testing.T) {
	engine, fleet, client := fleetStack(t)
	ctx := context.Background()

	if fleet.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d", fleet.ShardCount())
	}
	for i := 0; i < 6; i++ {
		if _, err := client.Search(ctx, fmt.Sprintf("fleet api search %d", i)); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	st := fleet.Stats()
	if st.AliveShards != 3 || st.SessionsActive == 0 {
		t.Fatalf("stats before kill: %+v", st)
	}
	// The engine only ever sees obfuscated queries, fleet or not. (The
	// very first query on a cold shard has an empty fake pool — the
	// paper's bootstrap case — so assert on a later one.)
	for _, l := range engine.QueryLog() {
		if l.Query == "fleet api search 5" {
			t.Fatalf("engine saw a bare original query: %q", l.Query)
		}
	}

	// Crash a shard: the client must keep working (re-attesting if its
	// session was pinned there).
	if err := fleet.KillShard(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(ctx, "after the crash"); err != nil {
		t.Fatalf("search after kill: %v", err)
	}

	// Drain another shard: its history migrates to a survivor.
	rep, err := fleet.DrainShard(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Successor != 2 {
		t.Fatalf("successor = %d, want the only survivor 2", rep.Successor)
	}
	if rep.MigratedQueries == 0 && fleet.Stats().Shards[2].Proxy.HistoryLen == 0 {
		t.Fatal("nothing migrated and successor history empty")
	}
	if _, err := client.Search(ctx, "after the drain"); err != nil {
		t.Fatalf("search after drain: %v", err)
	}
	st = fleet.Stats()
	if st.AliveShards != 1 {
		t.Fatalf("AliveShards = %d after kill+drain", st.AliveShards)
	}
	succ := st.Shards[2].Proxy
	if succ.Enclave.HeapBytes != succ.HistoryB+succ.CacheB+succ.IndexB {
		t.Fatalf("EPC invariant broken on survivor: heap=%d history=%d cache=%d",
			succ.Enclave.HeapBytes, succ.HistoryB, succ.CacheB)
	}
}

// TestFleetAutoscalePublicAPI exercises the elastic surface end to end: a
// WithAutoscale fleet accepts manual scale events, spawned shards serve
// attested clients under the same pinned measurement, and retirement keeps
// the merged history on a survivor.
func TestFleetAutoscalePublicAPI(t *testing.T) {
	engine := xsearch.NewEngine(xsearch.WithCorpusSize(20), xsearch.WithEngineSeed(1))
	if err := engine.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = engine.Shutdown(ctx)
	})

	fleet, err := xsearch.NewFleet(
		xsearch.WithShardCount(1),
		xsearch.WithAutoscale(1, 3, xsearch.AutoscalePolicy{
			// A slow sampling loop: this test drives the scale events
			// manually and only wants the clamps and plumbing.
			Interval: time.Hour,
		}),
		xsearch.WithShardConfig(
			xsearch.WithEngines(xsearch.EngineSpec{Host: engine.Addr()}),
			xsearch.WithFakeQueries(2),
			xsearch.WithProxySeed(1),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = fleet.Shutdown(ctx)
	})
	ctx := context.Background()

	if _, err := fleet.ScaleUp(ctx); err != nil {
		t.Fatalf("ScaleUp: %v", err)
	}
	if _, err := fleet.ScaleUp(ctx); err != nil {
		t.Fatalf("second ScaleUp: %v", err)
	}
	if _, err := fleet.ScaleUp(ctx); err == nil {
		t.Fatal("ScaleUp past the max accepted")
	}
	if fleet.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d, want 3", fleet.ShardCount())
	}

	// An attested client connects against the fleet-wide measurement —
	// spawned shards attest identically to the founding one.
	client, err := xsearch.NewClient(fleet.URL(),
		xsearch.WithTrustedMeasurement(fleet.Measurement()),
		xsearch.WithAttestationKey(fleet.AttestationKey()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := client.Search(ctx, fmt.Sprintf("elastic api search %d", i)); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}

	rep, err := fleet.ScaleDown(ctx)
	if err != nil {
		t.Fatalf("ScaleDown: %v", err)
	}
	st := fleet.Stats()
	if st.CurrentShards != 2 || st.ScaleUps != 2 || st.ScaleDowns != 1 {
		t.Fatalf("after scale events: current=%d ups=%d downs=%d", st.CurrentShards, st.ScaleUps, st.ScaleDowns)
	}
	for _, ss := range st.Shards {
		if ss.Index == rep.Shard {
			t.Fatalf("retired shard %d still reported", rep.Shard)
		}
	}
	if _, err := client.Search(ctx, "after the retirement"); err != nil {
		t.Fatalf("search after retirement: %v", err)
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := xsearch.NewFleet(xsearch.WithShardCount(0)); err == nil {
		t.Error("zero shards accepted")
	}
	// A fleet needs engines (or echo mode) like any proxy.
	if _, err := xsearch.NewFleet(xsearch.WithShardCount(2)); err == nil {
		t.Error("fleet without engines accepted")
	}
}
