package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// pipelineRuntime is the untrusted half of the async request pipeline: it
// admits requests up to PipelineDepth, drains the enclave's completion
// ring through a pool of resume workers (each re-entering the enclave with
// one completion), routes final outcomes back to parked request
// goroutines, arms hedge timers, and aborts hedge losers. Nothing here is
// trusted — it moves opaque descriptors and timing around; every decision
// that matters (candidate choice, winner arbitration, breaker accounting,
// sealing) happens inside the enclave.
type pipelineRuntime struct {
	p     *Proxy
	depth int
	sem   chan struct{}

	mu      sync.Mutex
	waiters map[uint64]chan pendingOutcome
	// unclaimed stashes outcomes that arrived before their request
	// goroutine registered a waiter: the fetch is submitted inside the
	// stage-1 ecall, so a fast completion (immediate dial failure, warm
	// loopback engine) can race await(). Entries are consumed by await()
	// at registration time. abandoned marks ids whose caller genuinely
	// gave up (context cancelled); their late outcome is dropped — or, for
	// a follower claim, redeemed-and-discarded so the trusted entry frees.
	unclaimed map[uint64]pendingOutcome
	abandoned map[uint64]struct{}

	stop     chan struct{}
	stopOnce sync.Once
	workers  sync.WaitGroup
}

// pendingOutcome is what the dispatcher delivers to a parked request
// goroutine: the leader's final reply (or error), or a claim signal for a
// coalesced follower whose results are ready in-enclave.
type pendingOutcome struct {
	reply envelopeReply
	err   error
	claim bool
}

// resumeWorkerCount bounds how many completions are re-entered into the
// enclave concurrently. The resume ecall is the pipeline's CPU stage
// (parse → filter → cache → seal); a small pool keeps those stages
// overlapping without hogging TCS slots.
const resumeWorkerCount = 4

func newPipelineRuntime(p *Proxy, depth int) *pipelineRuntime {
	return &pipelineRuntime{
		p:         p,
		depth:     depth,
		sem:       make(chan struct{}, depth),
		waiters:   make(map[uint64]chan pendingOutcome),
		unclaimed: make(map[uint64]pendingOutcome),
		abandoned: make(map[uint64]struct{}),
		stop:      make(chan struct{}),
	}
}

// start spawns the resume workers.
func (pl *pipelineRuntime) start() {
	for i := 0; i < resumeWorkerCount; i++ {
		pl.workers.Add(1)
		go pl.resumeLoop()
	}
}

// stopDispatch halts the resume workers (shutdown/crash) and frees the
// outcome bookkeeping: with the workers gone no delivery will ever
// consume a stashed outcome or clear an abandoned mark, so entries from
// requests parked at teardown would otherwise linger for the life of the
// runtime.
func (pl *pipelineRuntime) stopDispatch() {
	pl.stopOnce.Do(func() { close(pl.stop) })
	pl.workers.Wait()
	pl.mu.Lock()
	pl.unclaimed = make(map[uint64]pendingOutcome)
	pl.abandoned = make(map[uint64]struct{})
	pl.mu.Unlock()
}

// drain waits for the admission semaphore to empty — every admitted
// request has delivered its final reply — bounded by ctx. Requests
// admitted while draining (direct-API callers racing shutdown) extend the
// wait; the HTTP front has already stopped accepting by the time Shutdown
// calls this.
func (pl *pipelineRuntime) drain(ctx context.Context) error {
	for {
		if pl.inFlight() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("proxy: pipeline drain: %w", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// inFlight reports currently admitted requests (a Stats gauge).
func (pl *pipelineRuntime) inFlight() int { return len(pl.sem) }

// resumeLoop drains the completion ring: each completion is re-entered
// into the enclave via the "resume" ecall, and the enclave's verdict is
// routed to whoever is parked on it.
func (pl *pipelineRuntime) resumeLoop() {
	defer pl.workers.Done()
	comp := pl.p.encl.Completions()
	for {
		select {
		case <-pl.stop:
			return
		case c := <-comp:
			if c.Err != nil {
				// Submission-time validation makes handler lookups
				// infallible; an errored completion carries no token to
				// route, so there is nothing to resume.
				continue
			}
			pl.handleCompletion(c.Result)
		}
	}
}

func (pl *pipelineRuntime) handleCompletion(raw []byte) {
	out, err := pl.p.encl.ECall(context.Background(), "resume", raw)
	if err != nil {
		return // enclave destroyed mid-flight
	}
	var rr resumeReply
	if err := json.Unmarshal(out, &rr); err != nil {
		return
	}
	if rr.State != "done" {
		return
	}
	// Abort the losers before delivering the win.
	if f := pl.p.conns.fetch; f != nil {
		for _, tok := range rr.CancelTokens {
			f.cancelFetch(tok)
		}
	}
	var outcome pendingOutcome
	if rr.Err != "" {
		outcome.err = fmt.Errorf("%s", rr.Err)
	} else if err := json.Unmarshal(rr.Reply, &outcome.reply); err != nil {
		outcome.err = fmt.Errorf("proxy: bad pipeline reply: %w", err)
	}
	pl.deliver(rr.PendingID, outcome)
	for _, wid := range rr.Waiters {
		pl.deliver(wid, pendingOutcome{claim: true})
	}
}

// deliver hands an outcome — a final reply, or a claim signal for a
// coalesced follower — to the goroutine parked on id. The send happens
// under the waiter lock: the channel is buffered and receives exactly one
// send, so this cannot block, and holding the lock serializes delivery
// against abandon. A missing waiter does NOT mean the caller gave up —
// the request goroutine may simply not have reached await() yet (the
// fetch was submitted inside the stage-1 ecall) — so the outcome is
// stashed for await() to consume. Only an id abandon() marked is truly
// gone: its outcome is dropped (a ready follower claim is redeemed and
// discarded so the trusted entry frees) and the mark released.
func (pl *pipelineRuntime) deliver(id uint64, out pendingOutcome) {
	pl.mu.Lock()
	if ch := pl.waiters[id]; ch != nil {
		delete(pl.waiters, id)
		ch <- out
		pl.mu.Unlock()
		return
	}
	if _, gone := pl.abandoned[id]; gone {
		delete(pl.abandoned, id)
		pl.mu.Unlock()
		if out.claim {
			pl.discardClaim(id)
		}
		return
	}
	pl.unclaimed[id] = out
	pl.mu.Unlock()
}

// discardClaim redeems and drops an abandoned follower's results.
func (pl *pipelineRuntime) discardClaim(id uint64) {
	arg, err := json.Marshal(claimArg{PendingID: id})
	if err != nil {
		return
	}
	_, _ = pl.p.encl.ECall(context.Background(), "claim", arg)
}

// await parks the calling request goroutine until the dispatcher delivers
// its outcome, arming the hedge timer when the enclave said one is worth
// having.
func (pl *pipelineRuntime) await(ctx context.Context, reply envelopeReply) (envelopeReply, error) {
	id := reply.Pending
	ch := make(chan pendingOutcome, 1)
	pl.mu.Lock()
	if out, ok := pl.unclaimed[id]; ok {
		// The outcome beat us here (fetch completed before the stage-1
		// ecall's caller reached await): consume the stash directly.
		delete(pl.unclaimed, id)
		pl.mu.Unlock()
		return pl.consume(ctx, id, out)
	}
	pl.waiters[id] = ch
	pl.mu.Unlock()

	if reply.CanHedge {
		delay := pl.p.hedgeDelayFor(reply.Upstream)
		timer := time.AfterFunc(delay, func() { pl.fireHedge(id, delay) })
		defer timer.Stop()
	}

	select {
	case out := <-ch:
		return pl.consume(ctx, id, out)
	case <-ctx.Done():
		pl.abandon(id, ch)
		return envelopeReply{}, fmt.Errorf("proxy: pipelined request: %w", ctx.Err())
	case <-pl.stop:
		pl.abandon(id, ch)
		return envelopeReply{}, fmt.Errorf("proxy: pipeline stopped")
	}
}

// consume turns a delivered outcome into the caller's reply, redeeming a
// follower claim via the claim ecall.
func (pl *pipelineRuntime) consume(ctx context.Context, id uint64, out pendingOutcome) (envelopeReply, error) {
	if out.claim {
		reply, err := pl.claim(ctx, id)
		if err != nil && ctx.Err() != nil {
			// The claim ecall died on the caller's cancelled context;
			// free the trusted entry so it cannot leak.
			pl.discardClaim(id)
		}
		return reply, err
	}
	return out.reply, out.err
}

// abandon unregisters a parked request whose caller gave up, consuming an
// outcome that raced in so a ready follower entry is still redeemed (and
// dropped) inside the enclave. When no outcome raced in, the id is marked
// abandoned so the eventual delivery is dropped rather than stashed, and
// the enclave is told: a lone leader's in-flight fetches are cancelled
// and its trusted entries freed — otherwise client-timeout storms against
// an unresponsive upstream would accumulate fetches past the
// PipelineDepth×(1+HedgeMax) bound the async sizing relies on.
func (pl *pipelineRuntime) abandon(id uint64, ch chan pendingOutcome) {
	pl.mu.Lock()
	delete(pl.waiters, id)
	select {
	case out := <-ch:
		pl.mu.Unlock()
		if out.claim {
			pl.discardClaim(id)
		}
		return
	default:
		pl.abandoned[id] = struct{}{}
		pl.mu.Unlock()
	}
	if pl.p == nil {
		return // dispatcher-only unit tests
	}
	arg, err := json.Marshal(abandonArg{PendingID: id})
	if err != nil {
		return
	}
	out, err := pl.p.encl.ECall(context.Background(), "abandon", arg)
	if err != nil {
		return // enclave destroyed mid-teardown; nothing left to cancel
	}
	var ar abandonReply
	if err := json.Unmarshal(out, &ar); err != nil {
		return
	}
	if ar.Freed {
		// The enclave released the entry while live: no resume will ever
		// deliver this id, so the mark would otherwise linger forever.
		pl.mu.Lock()
		delete(pl.abandoned, id)
		pl.mu.Unlock()
	}
	if f := pl.p.conns.fetch; f != nil {
		for _, tok := range ar.CancelTokens {
			f.cancelFetch(tok)
		}
	}
}

// claim redeems a coalesced follower's ready results.
func (pl *pipelineRuntime) claim(ctx context.Context, id uint64) (envelopeReply, error) {
	arg, err := json.Marshal(claimArg{PendingID: id})
	if err != nil {
		return envelopeReply{}, err
	}
	out, err := pl.p.encl.ECall(ctx, "claim", arg)
	if err != nil {
		return envelopeReply{}, err
	}
	var reply envelopeReply
	if err := json.Unmarshal(out, &reply); err != nil {
		return envelopeReply{}, fmt.Errorf("proxy: bad claim reply: %w", err)
	}
	return reply, nil
}

// fireHedge asks the enclave to hedge a still-parked request; the enclave
// decides (health, HedgeMax, flight state), the runtime only times. When
// another hedge remains in budget, the timer re-arms at the same delay; a
// timer firing after the request finalized gets {Hedged: false} and the
// chain stops.
func (pl *pipelineRuntime) fireHedge(id uint64, delay time.Duration) {
	select {
	case <-pl.stop:
		return
	default:
	}
	arg, err := json.Marshal(hedgeArg{PendingID: id})
	if err != nil {
		return
	}
	out, err := pl.p.encl.ECall(context.Background(), "hedge", arg)
	if err != nil {
		return
	}
	var hr hedgeReply
	if err := json.Unmarshal(out, &hr); err != nil {
		return
	}
	if hr.Hedged && hr.CanHedge {
		time.AfterFunc(delay, func() { pl.fireHedge(id, delay) })
	}
}

// run is the pipelined request path: admit, stage-1 ecall, then either the
// short-circuit reply or a park-and-await.
func (p *Proxy) run(ctx context.Context, req envelope) (envelopeReply, error) {
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	pl := p.pipeline
	if pl == nil {
		return p.ecall(ctx, req)
	}
	select {
	case pl.sem <- struct{}{}:
	case <-ctx.Done():
		return envelopeReply{}, fmt.Errorf("proxy: pipeline admission: %w", ctx.Err())
	case <-pl.stop:
		return envelopeReply{}, fmt.Errorf("proxy: pipeline stopped")
	}
	defer func() { <-pl.sem }()

	reply, err := p.ecall(ctx, req)
	if err != nil || reply.Pending == 0 {
		return reply, err
	}
	return pl.await(ctx, reply)
}

// hedgeDelayFor resolves the effective hedge delay for a request whose
// primary fetch went to host: the configured HedgeDelay, or — when zero —
// the p95 of host's observed fetch latency once enough samples exist
// (hedging above p95 keeps the duplicate-request rate near 5%, the
// tail-at-scale guidance), else DefaultHedgeDelay while cold.
func (p *Proxy) hedgeDelayFor(host string) time.Duration {
	if p.cfg.HedgeDelay > 0 {
		return p.cfg.HedgeDelay
	}
	if f := p.conns.fetch; f != nil {
		if h := f.latencyFor(host); h != nil && h.Count() >= autoHedgeMinSamples {
			d := h.Percentile(95)
			if d < autoHedgeFloor {
				d = autoHedgeFloor
			}
			return d
		}
	}
	return DefaultHedgeDelay
}

const (
	// autoHedgeMinSamples is how many completed fetches an upstream needs
	// before its p95 drives the hedge delay.
	autoHedgeMinSamples = 16
	// autoHedgeFloor keeps a very fast upstream's derived delay from
	// collapsing to the histogram's microsecond floor and hedging every
	// request.
	autoHedgeFloor = time.Millisecond
)
