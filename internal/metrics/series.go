package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Series is a named sequence of points, one plotted line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the Y value at the first point whose X equals x, and whether
// one was found.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a collection of series plus axis labels — the data behind one
// of the paper's plots, renderable as an aligned text table (our substitute
// for gnuplot output).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure with the given labels.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a new named series and returns it.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Render produces an aligned table with one row per distinct X across all
// series and one column per series. Missing values render as "-".
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	fmt.Fprintf(&b, "# x=%s  y=%s\n", f.XLabel, f.YLabel)

	xsSet := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, formatNum(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e9 && v > -1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// RenderCSV emits the figure as CSV (header row, one row per distinct X),
// ready for gnuplot/matplotlib. Missing values are empty cells.
func (f *Figure) RenderCSV() string {
	var b strings.Builder
	xsSet := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		b.WriteString(formatNum(x))
		for _, s := range f.Series {
			b.WriteByte(',')
			if y, ok := s.YAt(x); ok {
				b.WriteString(formatNum(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// csvEscape quotes a field when it contains separators.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
