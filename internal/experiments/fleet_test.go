package experiments

import (
	"testing"
	"time"
)

func TestRunFleetValidation(t *testing.T) {
	if _, err := RunFleet(FleetConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunFleet(FleetConfig{ShardCounts: []int{1}, Workers: 0, Requests: 10}); err == nil {
		t.Error("zero workers accepted")
	}
}

// The acceptance bar of the fleet layer: added shards must demonstrably
// scale throughput of a concurrency-bound enclave (2 shards >= 1.4x one;
// measured ~1.9x — the slack keeps the test robust on loaded CI machines),
// a shard crash mid-run must lose zero requests, and every live shard must
// satisfy heap == history + cache + index at each phase boundary.
func TestRunFleetScalesAndSurvivesKill(t *testing.T) {
	cfg := FleetConfig{
		ShardCounts:   []int{1, 2},
		Workers:       8,
		Requests:      160,
		EngineService: 2 * time.Millisecond,
		TCSPerShard:   2,
		KillShards:    3,
		KillRequests:  160,
		DocsPerTopic:  10,
		Seed:          1,
	}
	if raceEnabled {
		cfg.Requests, cfg.KillRequests = 80, 80
	}
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if !pt.InvariantOK {
			t.Errorf("EPC invariant broken at %d shards", pt.Shards)
		}
		if pt.Throughput <= 0 {
			t.Errorf("no throughput at %d shards", pt.Shards)
		}
	}
	if res.Speedup < 1.4 {
		t.Errorf("2 shards only %.2fx of 1 shard (want >= 1.4x)", res.Speedup)
	}
	if res.KillErrors != 0 {
		t.Errorf("kill run lost %d/%d requests", res.KillErrors, res.KillTotal)
	}
	if !res.KillInvariantOK {
		t.Error("EPC invariant broken after the kill run")
	}
}
