// Package dcnet implements the core of Dissent's anonymity substrate
// (Corrigan-Gibbs & Ford, CCS'10): a dining-cryptographers network. Every
// pair of group members shares a secret; in each communication round every
// member broadcasts the XOR of its pairwise pads, the slot owner
// additionally XORs in the message, and the combination of all broadcasts
// reveals the message without revealing the sender. The paper (§2.1.1)
// cites Dissent as the strongest-anonymity baseline whose performance is
// "even worse than RAC" — this package exists to measure exactly that
// cost structure: O(N²) pad computation and a globally serialized round
// per message.
package dcnet

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"xsearch/internal/netsim"
	"xsearch/internal/securechannel"
)

// Errors returned by the group.
var (
	ErrMessageTooLarge = errors.New("dcnet: message exceeds slot size")
	ErrBadOwner        = errors.New("dcnet: owner out of range")
)

// GroupConfig parameterizes a DC-net group.
type GroupConfig struct {
	// Members is the group size N (>= 3 for meaningful anonymity).
	Members int
	// SlotSize is the fixed per-round message capacity in bytes.
	SlotSize int
	// Link models the WAN cost of one round's scatter/gather; nil means
	// no network delay (CPU-bound measurement).
	Link *netsim.Link
}

// Group is an established DC-net: pairwise keys exchanged, round counter
// at zero. Rounds are serialized, as the protocol requires.
type Group struct {
	n        int
	slotSize int
	link     *netsim.Link
	// pairKey[i][j] is the AES key shared by members i and j (i != j).
	pairKey [][][32]byte

	mu    sync.Mutex
	round uint64
}

// NewGroup runs the pairwise key agreement (real ECDH per pair, as
// Dissent's setup does) and returns a ready group.
func NewGroup(cfg GroupConfig) (*Group, error) {
	if cfg.Members < 3 {
		return nil, fmt.Errorf("dcnet: need >= 3 members, got %d", cfg.Members)
	}
	if cfg.SlotSize <= 0 {
		cfg.SlotSize = 512
	}
	// Long-term ECDH identities.
	privs := make([]*ecdh.PrivateKey, cfg.Members)
	for i := range privs {
		p, err := ecdh.P256().GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("dcnet: keygen member %d: %w", i, err)
		}
		privs[i] = p
	}
	g := &Group{n: cfg.Members, slotSize: cfg.SlotSize, link: cfg.Link}
	g.pairKey = make([][][32]byte, cfg.Members)
	for i := range g.pairKey {
		g.pairKey[i] = make([][32]byte, cfg.Members)
	}
	for i := 0; i < cfg.Members; i++ {
		for j := i + 1; j < cfg.Members; j++ {
			secret, err := privs[i].ECDH(privs[j].PublicKey())
			if err != nil {
				return nil, fmt.Errorf("dcnet: pair (%d,%d): %w", i, j, err)
			}
			raw, err := securechannel.DeriveKey(secret, nil,
				[]byte(fmt.Sprintf("dcnet pad %d-%d", i, j)), 32)
			if err != nil {
				return nil, err
			}
			var key [32]byte
			copy(key[:], raw)
			g.pairKey[i][j] = key
			g.pairKey[j][i] = key
		}
	}
	return g, nil
}

// Members returns the group size.
func (g *Group) Members() int { return g.n }

// SlotSize returns the per-round capacity.
func (g *Group) SlotSize() int { return g.slotSize }

// pad computes the deterministic pad between members i and j for a round.
// Both sides compute the identical keystream, so XORing all broadcasts
// cancels every pad.
func (g *Group) pad(i, j int, round uint64, out []byte) error {
	block, err := aes.NewCipher(g.pairKey[i][j][:])
	if err != nil {
		return err
	}
	var iv [16]byte
	binary.BigEndian.PutUint64(iv[:8], round)
	stream := cipher.NewCTR(block, iv[:])
	for k := range out {
		out[k] = 0
	}
	stream.XORKeyStream(out, out)
	return nil
}

// Round executes one DC-net round with the given slot owner transmitting
// msg. It computes every member's broadcast (paying the full O(N²) pad
// cost) and returns the combined plaintext — which must equal msg, the
// dining-cryptographers correctness property. The round is serialized
// group-wide and pays one scatter + one gather link traversal.
func (g *Group) Round(owner int, msg []byte) ([]byte, error) {
	if owner < 0 || owner >= g.n {
		return nil, ErrBadOwner
	}
	if len(msg) > g.slotSize {
		return nil, ErrMessageTooLarge
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.round++
	round := g.round

	if g.link != nil {
		g.link.Wait() // scatter: every member must receive the schedule
	}
	combined := make([]byte, g.slotSize)
	padBuf := make([]byte, g.slotSize)
	for i := 0; i < g.n; i++ {
		// Member i's broadcast: XOR of its pads with every other member.
		broadcast := make([]byte, g.slotSize)
		for j := 0; j < g.n; j++ {
			if i == j {
				continue
			}
			if err := g.pad(i, j, round, padBuf); err != nil {
				return nil, err
			}
			for k := range broadcast {
				broadcast[k] ^= padBuf[k]
			}
		}
		if i == owner {
			for k := range msg {
				broadcast[k] ^= msg[k]
			}
		}
		for k := range combined {
			combined[k] ^= broadcast[k]
		}
	}
	if g.link != nil {
		g.link.Wait() // gather: broadcasts reach every member
	}
	return combined[:len(msg)], nil
}

// Exchange performs one anonymous request/response: the owner transmits
// the request in one round; the designated exit (member 0 by convention)
// executes it and broadcasts the response in a second round. Responses
// larger than a slot take multiple rounds.
func (g *Group) Exchange(owner int, request []byte, exit func([]byte) ([]byte, error)) ([]byte, error) {
	got, err := g.Round(owner, request)
	if err != nil {
		return nil, err
	}
	response, err := exit(got)
	if err != nil {
		response = []byte("ERR " + err.Error())
	}
	var out []byte
	for off := 0; off == 0 || off < len(response); off += g.slotSize {
		end := off + g.slotSize
		if end > len(response) {
			end = len(response)
		}
		chunk, err := g.Round(0, response[off:end])
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}
