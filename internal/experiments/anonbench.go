package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"xsearch/internal/dcnet"
	"xsearch/internal/metrics"
	"xsearch/internal/netsim"
	"xsearch/internal/proxy"
	"xsearch/internal/rac"
	"xsearch/internal/tor"
	"xsearch/internal/workload"
)

// AnonBenchConfig sizes the anonymity-substrate comparison, an extension
// experiment backing the paper's §2.1.1/§2.2 qualitative claims: Dissent
// is slower than RAC, RAC slower than Tor, and all of them orders of
// magnitude below an SGX proxy.
type AnonBenchConfig struct {
	// GroupSize is the Dissent group / RAC ring size.
	GroupSize int
	// HopMedian is the WAN hop delay for RAC/Tor/DC-net rounds.
	HopMedian time.Duration
	// Scale compresses WAN time.
	Scale float64
	// Duration and Workers shape each measurement.
	Duration time.Duration
	Workers  int
	// Rates to probe per system; each stops at the first rate whose p50
	// exceeds MaxP50.
	DissentRates []float64
	RACRates     []float64
	TorRates     []float64
	XSearchRates []float64
	MaxP50       time.Duration
	Seed         uint64
}

// DefaultAnonBenchConfig compresses WAN time 10x so the full sweep stays
// under a minute while preserving the systems' relative ordering.
func DefaultAnonBenchConfig() AnonBenchConfig {
	return AnonBenchConfig{
		GroupSize:    8,
		HopMedian:    50 * time.Millisecond,
		Scale:        0.1,
		Duration:     time.Second,
		Workers:      64,
		DissentRates: []float64{5, 10, 25, 50, 100},
		RACRates:     []float64{10, 25, 50, 100, 200},
		TorRates:     []float64{50, 100, 250, 500, 1000},
		XSearchRates: []float64{1000, 10000, 50000, 100000},
		MaxP50:       time.Second,
		Seed:         1,
	}
}

// AnonBenchResult carries the per-system sweep points and knees.
type AnonBenchResult struct {
	Figure *metrics.Figure
	// Knee is the highest probed rate with sub-MaxP50 median latency.
	Knee map[string]float64
}

// RunAnonBench measures the four anonymity substrates under identical
// open-loop load: DC-net (Dissent's core), RAC ring, Tor circuits, and the
// X-Search enclave proxy (echo mode).
func RunAnonBench(f *Fixture, cfg AnonBenchConfig) (*AnonBenchResult, error) {
	if cfg.GroupSize <= 0 {
		cfg = DefaultAnonBenchConfig()
	}
	queries := f.TrainPool
	if len(queries) == 0 {
		return nil, fmt.Errorf("anonbench: empty query pool")
	}
	ctx := context.Background()
	baseCfg := workload.Config{Duration: cfg.Duration, Workers: cfg.Workers, Timeout: 30 * time.Second}
	res := &AnonBenchResult{Knee: make(map[string]float64)}
	fig := metrics.NewFigure(
		"Extension: anonymity substrates, p50 latency vs offered rate",
		"offered_req_per_s", "p50_latency_ms")

	record := func(name string, pts []workload.SweepPoint) {
		series := fig.AddSeries(name)
		for _, p := range pts {
			series.Add(p.Rate, float64(p.Result.Latency.P50)/float64(time.Millisecond))
			if p.Result.Latency.P50 < cfg.MaxP50 && p.Rate > res.Knee[name] {
				res.Knee[name] = p.Rate
			}
		}
	}

	// --- Dissent (DC-net): globally serialized rounds, O(N^2) pads ---
	// The round link pays the scatter/gather WAN cost.
	roundLink, err := mkScaledLink(cfg.HopMedian, cfg.Scale, cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	group, err := dcnet.NewGroup(dcnet.GroupConfig{
		Members:  cfg.GroupSize,
		SlotSize: 256,
		Link:     roundLink,
	})
	if err != nil {
		return nil, err
	}
	var di atomic.Uint64
	dissentTarget := func(ctx context.Context) error {
		i, q := nextWorkItem(&di, queries)
		_, err := group.Exchange(i%cfg.GroupSize, []byte(q),
			func([]byte) ([]byte, error) { return nil, nil })
		return err
	}
	dPts, err := workload.Sweep(ctx, cfg.DissentRates, baseCfg, cfg.MaxP50, dissentTarget)
	if err != nil {
		return nil, fmt.Errorf("anonbench dissent: %w", err)
	}
	record("Dissent", dPts)

	// --- RAC: full double ring circuit per request ---
	ring, err := rac.NewRing(rac.RingConfig{
		Nodes:     cfg.GroupSize,
		HopMedian: cfg.HopMedian,
		Scale:     cfg.Scale,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer ring.Close()
	var ri atomic.Uint64
	racTarget := func(ctx context.Context) error {
		_, q := nextWorkItem(&ri, queries)
		_, err := ring.Send([]byte(q), 30*time.Second)
		return err
	}
	rPts, err := workload.Sweep(ctx, cfg.RACRates, baseCfg, cfg.MaxP50, racTarget)
	if err != nil {
		return nil, fmt.Errorf("anonbench rac: %w", err)
	}
	record("RAC", rPts)

	// --- Tor: 3 hops out of the same node population ---
	network, err := tor.NewNetwork(tor.NetworkConfig{
		Relays:    cfg.GroupSize,
		HopMedian: cfg.HopMedian,
		Scale:     cfg.Scale,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer network.Close()
	circuits := make(chan *tor.Circuit, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		c, err := network.BuildCircuit(3)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		circuits <- c
	}
	var ti atomic.Uint64
	torTarget := func(ctx context.Context) error {
		_, q := nextWorkItem(&ti, queries)
		c := <-circuits
		defer func() { circuits <- c }()
		_, err := c.Fetch([]byte(q), 30*time.Second)
		return err
	}
	tPts, err := workload.Sweep(ctx, cfg.TorRates, baseCfg, cfg.MaxP50, torTarget)
	if err != nil {
		return nil, fmt.Errorf("anonbench tor: %w", err)
	}
	record("Tor", tPts)

	// --- X-Search: enclave proxy, echo mode, direct processing path ---
	xsProxy, err := proxy.New(proxy.Config{K: 3, EchoMode: true, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer xsProxy.Shutdown(context.Background()) //nolint:errcheck // teardown
	var xi atomic.Uint64
	xsTarget := func(ctx context.Context) error {
		_, q := nextWorkItem(&xi, queries)
		_, err := xsProxy.ServeQuery(ctx, q)
		return err
	}
	xPts, err := workload.Sweep(ctx, cfg.XSearchRates, baseCfg, cfg.MaxP50, xsTarget)
	if err != nil {
		return nil, fmt.Errorf("anonbench xsearch: %w", err)
	}
	record("X-Search", xPts)

	res.Figure = fig
	return res, nil
}

func mkScaledLink(median time.Duration, scale float64, seed uint64) (*netsim.Link, error) {
	model, err := netsim.NewLognormal(median, netsim.WANSigma, seed)
	if err != nil {
		return nil, err
	}
	return netsim.NewLink(model, scale), nil
}

// nextWorkItem draws the next round-robin query for a concurrent workload
// target: c is the target's own atomic cursor, shared by its worker
// goroutines. Returns the zero-based draw index alongside the query.
func nextWorkItem(c *atomic.Uint64, queries []string) (int, string) {
	i := int(c.Add(1) - 1)
	return i, queries[i%len(queries)]
}
