package fleet

import (
	"encoding/json"
	"net/http"
	"strconv"

	"xsearch/internal/obs"
	"xsearch/internal/proxy"
)

// This file renders the fleet's Prometheus surface and serves the shared
// structured event log. The same two hard rules as the per-proxy surface
// (see internal/obs) hold here, with one more closed label set: the
// shard index. Shard indices are fleet-assigned, never traffic-derived,
// so stamping each shard's series with its index keeps cardinality
// bounded by the ring size.

// handleMetrics serves GET /metrics: gateway routing counters, every
// live shard's full node surface labelled by shard index, and the
// fleet-merged stage summaries. With ?shard=N it narrows to that one
// shard's surface (still shard-labelled, so the series names align).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sh, selected, err := g.shardParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	pw := obs.NewPromWriter(w)
	if selected {
		proxy.WriteMetrics(pw, sh.proxy.Stats(), "shard", strconv.Itoa(sh.index))
		_ = pw.Flush()
		return
	}
	s := g.Stats()
	pw.Gauge("xsearch_fleet_shards", "Shard ring size.", float64(s.CurrentShards))
	pw.Gauge("xsearch_fleet_shards_alive", "Shards still able to serve.", float64(s.AliveShards))
	pw.Gauge("xsearch_fleet_sessions_active", "Gateway session-routing table size.", float64(s.SessionsActive))
	pw.Counter("xsearch_fleet_plain_routed_total", "Plain queries routed.", float64(s.PlainRouted))
	pw.Counter("xsearch_fleet_secure_routed_total", "Secure records routed.", float64(s.SecureRouted))
	pw.Counter("xsearch_fleet_handshakes_total", "Attested handshakes routed.", float64(s.Handshakes))
	pw.Counter("xsearch_fleet_failovers_total", "Requests re-routed past an unavailable shard.", float64(s.Failovers))
	pw.Counter("xsearch_fleet_sessions_lost_total", "Session pins dropped with their shard.", float64(s.SessionsLost))
	pw.Counter("xsearch_fleet_errors_total", "Requests the gateway answered with an error.", float64(s.Errors))
	pw.Counter("xsearch_fleet_drains_total", "Completed sealed drain handoffs.", float64(s.Drains))
	pw.Counter("xsearch_fleet_migrated_queries_total", "History entries moved by sealed handoffs.", float64(s.MigratedQueries))
	pw.Counter("xsearch_fleet_scale_ups_total", "Shards spawned by scale events.", float64(s.ScaleUps))
	pw.Counter("xsearch_fleet_scale_downs_total", "Shards retired by scale events.", float64(s.ScaleDowns))

	// The fleet-merged stage view: counts summed, tails from the worst
	// shard (percentiles do not merge across histograms — the same rule
	// as Stats.LatencyP99Max).
	pw.StageSummaries("xsearch_fleet_stage_latency_seconds", "Fleet-merged per-stage latency (counts summed, tails worst-shard).", s.Stages)
	pw.Gauge("xsearch_fleet_events_logged", "Shared event-ring occupancy.", float64(s.EventsLogged))

	// Per-shard series: every live shard's full node surface, stamped
	// with its stable index. PromWriter groups families on Flush, so the
	// interleaved emission still renders valid exposition blocks.
	for _, ss := range s.Shards {
		if !ss.Alive {
			continue
		}
		proxy.WriteMetrics(pw, ss.Proxy, "shard", strconv.Itoa(ss.Index))
	}
	_ = pw.Flush()
}

// handleEvents serves GET /events: the fleet-shared structured event
// log, oldest first. With observability off it serves an empty array —
// the endpoint's shape is constant either way.
func (g *Gateway) handleEvents(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	evs := g.events.Snapshot()
	if evs == nil {
		evs = []obs.Event{}
	}
	_ = json.NewEncoder(w).Encode(evs)
}
