package experiments

import (
	"fmt"

	"xsearch/internal/core"
	"xsearch/internal/metrics"
	"xsearch/internal/searchengine"
)

// Fig4Config sizes the accuracy experiment.
type Fig4Config struct {
	// MaxK is the largest number of fake queries (paper: 7).
	MaxK int
	// Queries is the number of test queries per k (paper: 100, bounded
	// by Bing's rate limits).
	Queries int
	// TopN is the result-list depth (paper: first 20 results).
	TopN int
	// DocsPerTopic sizes the engine corpus.
	DocsPerTopic int
	// Seed fixes the corpus.
	Seed uint64
}

// DefaultFig4Config mirrors the paper's methodology (§5.3.2).
func DefaultFig4Config() Fig4Config {
	return Fig4Config{MaxK: 7, Queries: 100, TopN: 20, DocsPerTopic: 200, Seed: 1}
}

// Fig4Result carries the figure plus the headline k=2 values the paper
// quotes (recall and precision both > 0.8).
type Fig4Result struct {
	Figure        *metrics.Figure
	Precision     map[int]float64
	Recall        map[int]float64
	RecallAtK2    float64
	PrecisionAtK2 float64
}

// RunFig4 reproduces Figure 4: precision and recall of X-Search's filtered
// results against the results of the unobfuscated query, as k grows. Per
// the paper's methodology, the obfuscated query executes as independent
// sub-queries whose top-N lists are merged (Bing's OR handled only single
// words), then Algorithm 2 filters the merge.
func RunFig4(f *Fixture, cfg Fig4Config) (*Fig4Result, error) {
	if cfg.MaxK <= 0 {
		cfg = DefaultFig4Config()
	}
	idx := searchengine.BuildIndex(searchengine.GenerateCorpus(searchengine.CorpusConfig{
		DocsPerTopic: cfg.DocsPerTopic,
		Seed:         cfg.Seed,
	}))
	rng := f.Rand()

	res := &Fig4Result{
		Precision: make(map[int]float64),
		Recall:    make(map[int]float64),
	}
	fig := metrics.NewFigure(
		"Figure 4: accuracy of filtered results vs k",
		"k", "accuracy")
	pSeries := fig.AddSeries("Precision")
	rSeries := fig.AddSeries("Recall")

	for k := 0; k <= cfg.MaxK; k++ {
		sample := f.SampleTest(cfg.Queries)
		if len(sample) == 0 {
			return nil, fmt.Errorf("fig4: empty test sample")
		}
		var sumP, sumR float64
		n := 0
		for _, rec := range sample {
			reference := idx.Search(rec.Query, cfg.TopN)
			if len(reference) == 0 {
				continue // query found nothing; accuracy undefined
			}
			fakes := f.RandomTrainQueries(k)
			// Paper methodology: run each sub-query independently and
			// merge the k+1 result lists; the original sits at a random
			// position.
			ob := obfuscateWith(rng.IntN, rec.Query, fakes)
			lists := make([][]searchengine.Result, len(ob.Subqueries))
			for i, q := range ob.Subqueries {
				lists[i] = idx.Search(q, cfg.TopN)
			}
			merged := searchengine.MergeResultLists(lists, cfg.TopN*len(ob.Subqueries))
			asCore := make([]core.Result, len(merged))
			for i, r := range merged {
				asCore[i] = core.Result{URL: r.URL, Title: r.Title, Snippet: r.Snippet}
			}
			var fakesOnly []string
			for i, q := range ob.Subqueries {
				if i != ob.OriginalIndex {
					fakesOnly = append(fakesOnly, q)
				}
			}
			filtered := core.FilterResults(rec.Query, fakesOnly, asCore)

			refURLs := make([]string, len(reference))
			for i, r := range reference {
				refURLs[i] = r.URL
			}
			gotURLs := make([]string, len(filtered))
			for i, r := range filtered {
				gotURLs[i] = r.URL
			}
			p, r := metrics.PrecisionRecall(refURLs, gotURLs)
			sumP += p
			sumR += r
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("fig4: no scorable queries at k=%d", k)
		}
		res.Precision[k] = sumP / float64(n)
		res.Recall[k] = sumR / float64(n)
		pSeries.Add(float64(k), res.Precision[k])
		rSeries.Add(float64(k), res.Recall[k])
	}
	res.PrecisionAtK2 = res.Precision[2]
	res.RecallAtK2 = res.Recall[2]
	res.Figure = fig
	return res, nil
}
