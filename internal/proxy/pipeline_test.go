package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"xsearch/internal/enclave"
	"xsearch/internal/searchengine"
)

// Tests for the async request pipeline: staged ecalls around switchless
// fetches, hedged upstream requests, coalescing on the pending table, and
// the EPC invariant surviving all of it.

// newSlowEngine starts a loopback engine whose every request takes delay.
func newDelayEngine(t *testing.T, delay time.Duration) (*searchengine.Engine, *searchengine.Server) {
	t.Helper()
	engine := searchengine.NewEngine(searchengine.WithCorpus(
		searchengine.GenerateCorpus(searchengine.CorpusConfig{DocsPerTopic: 10, Seed: 1})))
	srv := searchengine.NewServer(engine)
	if delay > 0 {
		srv.DelayFn = func() time.Duration { return delay }
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return engine, srv
}

// assertEPCInvariant checks heap == history + cache + index, the accounting
// contract every pipeline stage must preserve.
func assertEPCInvariant(t *testing.T, p *Proxy) {
	t.Helper()
	s := p.Stats()
	if s.Enclave.HeapBytes != s.HistoryB+s.CacheB+s.IndexB {
		t.Errorf("EPC invariant broken: heap=%d history=%d cache=%d index=%d",
			s.Enclave.HeapBytes, s.HistoryB, s.CacheB, s.IndexB)
	}
}

func TestAsyncPipelinePlainQueries(t *testing.T) {
	_, srv := newDelayEngine(t, 0)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	for i := 0; i < 20; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("pipeline query %d", i)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	s := p.Stats()
	if s.AsyncSubmitted == 0 {
		t.Error("no async fetches submitted: requests took the blocking path")
	}
	if s.AsyncCompleted != s.AsyncSubmitted {
		t.Errorf("async submitted=%d completed=%d", s.AsyncSubmitted, s.AsyncCompleted)
	}
	if s.LatencyCount == 0 || s.LatencyP50 <= 0 {
		t.Errorf("latency histogram empty: %+v", s.LatencyCount)
	}
	assertEPCInvariant(t, p)
}

func TestAsyncPipelineSecureSession(t *testing.T) {
	_, srv := newDelayEngine(t, 0)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	channel, session, err := churnClient(p)
	if err != nil {
		t.Fatal(err)
	}
	reqPT, err := json.Marshal(secureRequest{Query: "pipeline secure query"})
	if err != nil {
		t.Fatal(err)
	}
	record, err := channel.Seal(reqPT)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Secure(context.Background(), session, record)
	if err != nil {
		t.Fatal(err)
	}
	respPT, err := channel.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	var sresp secureResponse
	if err := json.Unmarshal(respPT, &sresp); err != nil {
		t.Fatal(err)
	}
	if sresp.Err != "" {
		t.Fatalf("secure response error: %s", sresp.Err)
	}
	assertEPCInvariant(t, p)
}

// The loser of a hedge race is cancelled and the cache is charged exactly
// once: primary goes to a slow upstream, the hedge to a fast one wins.
func TestHedgeLoserCancelledCacheChargedOnce(t *testing.T) {
	_, slow := newDelayEngine(t, 300*time.Millisecond)
	_, fast := newDelayEngine(t, 0)
	p, err := New(Config{
		K:    1,
		Seed: 1,
		Engines: []EngineSpec{
			{Host: slow.Addr()}, // weighted-ring slot 0: the primary of request 1
			{Host: fast.Addr()},
		},
		AsyncOcalls: true,
		HedgeDelay:  20 * time.Millisecond,
		HedgeMax:    1,
		CacheBytes:  1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	start := time.Now()
	if _, err := p.ServeQuery(context.Background(), "hedged query"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("hedged request took %v: the slow primary was waited out", elapsed)
	}
	s := p.Stats()
	if s.HedgeAttempts != 1 || s.HedgeWins != 1 {
		t.Errorf("hedge attempts=%d wins=%d, want 1/1", s.HedgeAttempts, s.HedgeWins)
	}
	if s.CacheLen != 1 {
		t.Errorf("cache len = %d, want 1 (charged once by the winner)", s.CacheLen)
	}
	// The loser's completion lands after its socket is closed; wait for
	// the cancellation to be accounted.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s = p.Stats()
		if s.HedgeCancelled == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.HedgeCancelled != 1 {
		t.Errorf("hedge cancelled = %d, want 1", s.HedgeCancelled)
	}
	// A cancelled loser must not count against its upstream's breaker.
	for _, u := range s.Upstreams {
		if u.Failures != 0 {
			t.Errorf("upstream %s failures = %d, want 0", u.Host, u.Failures)
		}
	}
	assertEPCInvariant(t, p)
}

// Both upstreams down: the pipeline fails over, the request fails, and
// each upstream's breaker is charged exactly once for this request.
func TestHedgeBothUpstreamsFailBreakerCountsOnce(t *testing.T) {
	deadA, deadB := reservePort(t), reservePort(t)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: deadA}, {Host: deadB}},
		AsyncOcalls: true,
		HedgeDelay:  250 * time.Millisecond, // failover beats the hedge timer
		HedgeMax:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	if _, err := p.ServeQuery(context.Background(), "doomed query"); err == nil {
		t.Fatal("query succeeded with every upstream dead")
	}
	s := p.Stats()
	for _, u := range s.Upstreams {
		if u.Failures != 1 {
			t.Errorf("upstream %s failures = %d, want exactly 1", u.Host, u.Failures)
		}
	}
	assertEPCInvariant(t, p)
}

// Coalesced followers ride the leader's flight: no fetches and no hedges
// of their own, and the hedge budget is spent at most once per flight.
func TestCoalescedFollowersDoNotHedge(t *testing.T) {
	engA, srvA := newDelayEngine(t, 100*time.Millisecond)
	engB, srvB := newDelayEngine(t, 100*time.Millisecond)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srvA.Addr()}, {Host: srvB.Addr()}},
		AsyncOcalls: true,
		HedgeDelay:  20 * time.Millisecond,
		HedgeMax:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.ServeQuery(context.Background(), "identical storm query")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	s := p.Stats()
	if s.CoalesceShared != workers-1 || s.CoalesceLed != 1 {
		t.Errorf("coalesce shared/led = %d/%d, want %d/1", s.CoalesceShared, s.CoalesceLed, workers-1)
	}
	if s.HedgeAttempts > 1 {
		t.Errorf("hedge attempts = %d: followers hedged", s.HedgeAttempts)
	}
	// One flight: at most the primary plus one hedge reached an engine.
	if trips := len(engA.QueryLog()) + len(engB.QueryLog()); trips > 2 {
		t.Errorf("engines saw %d trips for one coalesced flight", trips)
	}
	assertEPCInvariant(t, p)
}

// Config validation: hedging requires the async pipeline; malformed root
// pins are rejected.
func TestPipelineConfigValidation(t *testing.T) {
	if _, err := New(Config{
		K:        1,
		Engines:  []EngineSpec{{Host: "127.0.0.1:1"}},
		HedgeMax: 1,
	}); err == nil || !strings.Contains(err.Error(), "AsyncOcalls") {
		t.Errorf("hedging without async: err = %v", err)
	}
	// In-enclave TLS upstreams now ride the async pipeline; garbage pins
	// are still rejected, at registry build.
	if _, err := New(Config{
		K:           1,
		Engines:     []EngineSpec{{Host: "127.0.0.1:1", RootsPEM: []byte("not a cert")}},
		AsyncOcalls: true,
	}); err == nil || !strings.Contains(err.Error(), "RootsPEM") {
		t.Errorf("async with garbage RootsPEM: err = %v", err)
	}
	if _, err := New(Config{
		K:           1,
		Engines:     []EngineSpec{{Host: "127.0.0.1:1"}},
		AsyncOcalls: true,
		HedgeMax:    -1,
	}); err == nil {
		t.Error("negative HedgeMax accepted")
	}
	if _, err := New(Config{
		K:           1,
		Engines:     []EngineSpec{{Host: "127.0.0.1:1"}},
		AsyncOcalls: true,
		HedgeMax:    1,
		HedgeDelay:  -5 * time.Millisecond,
	}); err == nil || !strings.Contains(err.Error(), "HedgeDelay") {
		t.Errorf("negative HedgeDelay: err = %v, want rejection", err)
	}
	// Explicit async workers/rings below the pipeline's needs would allow
	// stage-1 ecalls to block on a full submission ring while holding
	// every TCS (deadlock): rejected, not silently accepted.
	if _, err := New(Config{
		K:             1,
		Engines:       []EngineSpec{{Host: "127.0.0.1:1"}},
		AsyncOcalls:   true,
		PipelineDepth: 8,
		EnclaveConfig: enclave.Config{AsyncWorkers: 2},
	}); err == nil || !strings.Contains(err.Error(), "AsyncWorkers") {
		t.Errorf("undersized AsyncWorkers: err = %v, want rejection", err)
	}
	if _, err := New(Config{
		K:             1,
		Engines:       []EngineSpec{{Host: "127.0.0.1:1"}},
		AsyncOcalls:   true,
		PipelineDepth: 8,
		EnclaveConfig: enclave.Config{AsyncWorkers: 8, AsyncRingDepth: 4},
	}); err == nil || !strings.Contains(err.Error(), "AsyncRingDepth") {
		t.Errorf("undersized AsyncRingDepth: err = %v, want rejection", err)
	}
}

// A cancelled completion for a request that is NOT done (closeAll marking
// in-flight ops cancelled while resume workers still run — Shutdown's
// drain deadline expiring on stragglers) must finalize the request, not
// orphan it: the parked waiter gets a definitive reply instead of hanging.
func TestCancelledCompletionFinalizesLiveRequest(t *testing.T) {
	_, srv := newDelayEngine(t, 500*time.Millisecond)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	done := make(chan error, 1)
	go func() {
		_, err := p.ServeQuery(context.Background(), "straggler query")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // park the request mid-fetch
	p.conns.closeAll()                // cancels the in-flight op; workers still run
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "cancelled") {
			t.Errorf("straggler err = %v, want a cancellation failure", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled live request never finalized: waiter orphaned")
	}
	// A cancellation is not the upstream's fault: breaker untouched.
	for _, u := range p.Stats().Upstreams {
		if u.Failures != 0 {
			t.Errorf("upstream %s failures = %d, want 0 after cancellation", u.Host, u.Failures)
		}
	}
}

// Graceful drain: requests admitted before Shutdown finish their staged
// fetches before the enclave is destroyed.
func TestPipelineShutdownDrainsInFlight(t *testing.T) {
	_, srv := newDelayEngine(t, 100*time.Millisecond)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const inFlight = 4
	var wg sync.WaitGroup
	errs := make([]error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.ServeQuery(context.Background(), fmt.Sprintf("draining query %d", i))
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the fetches get airborne
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight request %d dropped by shutdown: %v", i, err)
		}
	}
}

// Pipelined secure traffic racing session churn: handshakes evict sessions
// (FIFO) while parked requests resolve against them. Sessions evicted
// mid-flight must fail cleanly; the table and pending bookkeeping must
// survive (-race covers the rest).
func TestPipelineSessionChurnRace(t *testing.T) {
	_, srv := newDelayEngine(t, 5*time.Millisecond)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
		MaxSessions: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				channel, session, err := churnClient(p)
				if err != nil {
					t.Errorf("worker %d handshake: %v", w, err)
					return
				}
				reqPT, err := json.Marshal(secureRequest{Query: fmt.Sprintf("churn %d-%d", w, i)})
				if err != nil {
					t.Errorf("marshal: %v", err)
					return
				}
				record, err := channel.Seal(reqPT)
				if err != nil {
					t.Errorf("seal: %v", err)
					return
				}
				// Evicted sessions fail with "unknown session" — a clean
				// loss, matching the sync path's churn semantics.
				if out, err := p.Secure(context.Background(), session, record); err == nil {
					if _, err := channel.Open(out); err != nil {
						t.Errorf("worker %d: corrupt response: %v", w, err)
						return
					}
				} else if !strings.Contains(err.Error(), "unknown session") &&
					!strings.Contains(err.Error(), "open record") {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	assertEPCInvariant(t, p)
}

// A completion can land before the request goroutine reaches await() —
// the fetch is submitted inside the stage-1 ecall, so an immediate dial
// failure wins that race. The outcome must be stashed for await to
// consume, not dropped: dropping parks the request forever and leaks its
// admission slot.
func TestDeliverBeforeAwaitIsStashed(t *testing.T) {
	pl := newPipelineRuntime(nil, 1, 0, 0)
	pl.deliver(7, pendingOutcome{err: fmt.Errorf("fast dial failure")})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := pl.await(ctx, envelopeReply{Pending: 7}); err == nil ||
		!strings.Contains(err.Error(), "fast dial failure") {
		t.Fatalf("await after early delivery: err = %v, want the stashed outcome", err)
	}
	if ctx.Err() != nil {
		t.Fatal("await blocked on an already-delivered outcome")
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if len(pl.unclaimed) != 0 || len(pl.waiters) != 0 {
		t.Errorf("stash/waiters not empty after consume: %d/%d", len(pl.unclaimed), len(pl.waiters))
	}
}

// The converse: an outcome for a request whose caller genuinely gave up
// (context cancelled while parked) is dropped, not stashed forever.
func TestAbandonedOutcomeDroppedNotStashed(t *testing.T) {
	pl := newPipelineRuntime(nil, 1, 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := pl.await(ctx, envelopeReply{Pending: 9})
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		pl.mu.Lock()
		_, registered := pl.waiters[9]
		pl.mu.Unlock()
		if registered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("await never registered its waiter")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("await returned nil after cancellation")
	}
	pl.deliver(9, pendingOutcome{err: fmt.Errorf("late outcome")})
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if len(pl.unclaimed) != 0 || len(pl.abandoned) != 0 || len(pl.waiters) != 0 {
		t.Errorf("late outcome leaked state: unclaimed=%d abandoned=%d waiters=%d",
			len(pl.unclaimed), len(pl.abandoned), len(pl.waiters))
	}
}

// End-to-end regression for the stash race: a dead upstream makes every
// fetch complete in microseconds (dial refused), reliably beating the
// requester to await. With outcomes dropped instead of stashed, each
// request leaked an admission slot and the pipeline deadlocked after
// PipelineDepth requests.
func TestPipelineFastFailureNoAdmissionLeak(t *testing.T) {
	dead := reservePort(t)
	p, err := New(Config{
		K:             1,
		Seed:          1,
		Engines:       []EngineSpec{{Host: dead}},
		AsyncOcalls:   true,
		PipelineDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	for i := 0; i < 12; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := p.ServeQuery(ctx, fmt.Sprintf("doomed fast-fail %d", i))
		timedOut := ctx.Err() != nil
		cancel()
		if err == nil {
			t.Fatalf("request %d succeeded against a dead upstream", i)
		}
		if timedOut {
			t.Fatalf("request %d hung (%v): outcome dropped, admission slot leaked", i, err)
		}
	}
	if n := p.pipeline.inFlight(); n != 0 {
		t.Errorf("inFlight = %d after every request returned", n)
	}
	assertEPCInvariant(t, p)
}

// Shutdown past its drain deadline: the straggler is cancelled and then
// FINALIZED — Shutdown's grace re-drain lets the cancelled completion
// traverse the rings — so the caller gets the definitive cancellation
// reply, not the generic pipeline-stopped error.
func TestShutdownStragglerGetsCancelledReply(t *testing.T) {
	_, srv := newDelayEngine(t, 5*time.Second)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := p.ServeQuery(context.Background(), "shutdown straggler")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // park the request mid-fetch
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); err == nil {
		t.Error("shutdown reported success with a straggler past the drain deadline")
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "cancelled") {
			t.Errorf("straggler err = %v, want the finalized cancellation reply", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("straggler never released by shutdown")
	}
}

// A drain deadline expiring on a straggler must not cost the operator the
// persisted history: the snapshot ecall runs on its own context, not the
// caller's already-expired one.
func TestShutdownPersistsStateDespiteExpiredDrain(t *testing.T) {
	_, srv := newDelayEngine(t, 5*time.Second)
	statePath := t.TempDir() + "/state.sealed"
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
		StatePath:   statePath,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := p.ServeQuery(context.Background(), "persist straggler")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); err == nil {
		t.Error("shutdown reported success past its drain deadline")
	}
	<-done
	if fi, err := os.Stat(statePath); err != nil || fi.Size() == 0 {
		t.Errorf("sealed state not persisted past the drain deadline: %v", err)
	}
}

// Abandoning a lone leader (caller ctx expires while parked) must free
// its trusted state and cancel its fetch: a later identical query then
// leads a fresh flight instead of coalescing onto a dead leader that will
// never finalize, and in-flight fetches stay bounded under client-timeout
// churn.
func TestAbandonCancelsLoneLeader(t *testing.T) {
	_, srv := newDelayEngine(t, 300*time.Millisecond)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err = p.ServeQuery(ctx, "abandoned flight")
	cancel()
	if err == nil {
		t.Fatal("query succeeded before the engine could have replied")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if _, err := p.ServeQuery(ctx2, "abandoned flight"); err != nil {
		t.Fatalf("retry after abandon: %v (coalesced onto a dead leader?)", err)
	}
	// Nothing parked once both calls returned; stash bookkeeping clean.
	pl := p.pipeline
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if len(pl.waiters) != 0 || len(pl.unclaimed) != 0 || len(pl.abandoned) != 0 {
		t.Errorf("dispatcher state leaked: waiters=%d unclaimed=%d abandoned=%d",
			len(pl.waiters), len(pl.unclaimed), len(pl.abandoned))
	}
}

// The p95-derived hedge delay: configured delay wins, a cold upstream gets
// the default, a warm histogram drives it.
func TestAutoHedgeDelay(t *testing.T) {
	_, srv := newDelayEngine(t, 0)
	p, err := New(Config{
		K:           1,
		Seed:        1,
		Engines:     []EngineSpec{{Host: srv.Addr()}},
		AsyncOcalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()

	host := srv.Addr()
	if d := p.hedgeDelayFor(host); d != DefaultHedgeDelay {
		t.Errorf("cold delay = %v, want default %v", d, DefaultHedgeDelay)
	}
	f := p.conns.fetch
	for i := 0; i < autoHedgeMinSamples; i++ {
		f.record(host, 40*time.Millisecond)
	}
	d := p.hedgeDelayFor(host)
	if d < 35*time.Millisecond || d > 50*time.Millisecond {
		t.Errorf("derived delay = %v, want ~p95 of 40ms", d)
	}
	p.cfg.HedgeDelay = 7 * time.Millisecond
	if d := p.hedgeDelayFor(host); d != 7*time.Millisecond {
		t.Errorf("configured delay = %v, want 7ms", d)
	}
}
