package dataset

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func testConfig() GeneratorConfig {
	cfg := DefaultGeneratorConfig()
	cfg.Users = 30
	cfg.MeanQueries = 60
	return cfg
}

func TestVocabulary(t *testing.T) {
	if len(Topics) < 30 {
		t.Errorf("only %d topics", len(Topics))
	}
	for _, topic := range Topics {
		if len(topic.Words) < 20 {
			t.Errorf("topic %q has only %d words", topic.Name, len(topic.Words))
		}
	}
	if VocabularySize() < 500 {
		t.Errorf("vocabulary too small: %d", VocabularySize())
	}
	if TopicByName("health") == nil {
		t.Error("TopicByName(health) = nil")
	}
	if TopicByName("nonexistent") != nil {
		t.Error("TopicByName(nonexistent) != nil")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*GeneratorConfig)
	}{
		{"zero users", func(c *GeneratorConfig) { c.Users = 0 }},
		{"zero queries", func(c *GeneratorConfig) { c.MeanQueries = 0 }},
		{"zero topics", func(c *GeneratorConfig) { c.TopicsPerUser = 0 }},
		{"too many topics", func(c *GeneratorConfig) { c.TopicsPerUser = len(Topics) + 1 }},
		{"bad concentration", func(c *GeneratorConfig) { c.TopicConcentration = 0 }},
		{"bad window", func(c *GeneratorConfig) { c.End = c.Start }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if _, err := NewGenerator(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := g1.Generate(), g2.Generate()
	if len(l1.Records) != len(l2.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(l1.Records), len(l2.Records))
	}
	for i := range l1.Records {
		if l1.Records[i] != l2.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, l1.Records[i], l2.Records[i])
		}
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := g.Generate()
	stats := log.Stats()
	if stats.Users != 30 {
		t.Errorf("Users = %d, want 30", stats.Users)
	}
	if stats.Records < 30*30 {
		t.Errorf("too few records: %d", stats.Records)
	}
	// Chronological order.
	for i := 1; i < len(log.Records); i++ {
		if log.Records[i].Time.Before(log.Records[i-1].Time) {
			t.Fatal("records not sorted by time")
		}
	}
	// Timestamps inside the window.
	cfg := testConfig()
	if stats.Start.Before(cfg.Start) || stats.End.After(cfg.End) {
		t.Errorf("window violated: [%v, %v]", stats.Start, stats.End)
	}
	// Activity is skewed: first user must have more queries than the last.
	byUser := log.ByUser()
	if len(byUser[1]) <= len(byUser[30]) {
		t.Errorf("activity not skewed: user1=%d user30=%d", len(byUser[1]), len(byUser[30]))
	}
	// Clicked records have both rank and URL; unclicked neither.
	for _, r := range log.Records {
		if (r.ItemRank > 0) != (r.ClickURL != "") {
			t.Fatalf("inconsistent click fields: %+v", r)
		}
	}
}

func TestUserModelWeights(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range g.Users() {
		var sum float64
		for _, w := range u.TopicWeights {
			if w <= 0 {
				t.Fatalf("non-positive weight for user %d", u.ID)
			}
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("weights of user %d sum to %f", u.ID, sum)
		}
		seen := map[int]struct{}{}
		for _, ti := range u.TopicIndices {
			if _, dup := seen[ti]; dup {
				t.Fatalf("duplicate topic for user %d", u.ID)
			}
			seen[ti] = struct{}{}
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := g.Generate()
	var buf bytes.Buffer
	if err := log.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "AnonID\tQuery\tQueryTime") {
		t.Error("missing AOL header")
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(log.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back.Records), len(log.Records))
	}
	for i := range back.Records {
		a, b := log.Records[i], back.Records[i]
		if a.UserID != b.UserID || a.Query != b.Query || !a.Time.Equal(b.Time) ||
			a.ItemRank != b.ItemRank || a.ClickURL != b.ClickURL {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadTSVSkipsGarbage(t *testing.T) {
	in := "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n" +
		"notanint\tfoo\t2006-03-01 00:00:00\t\t\n" +
		"12\tvalid query\t2006-03-01 10:00:00\t3\thttp://example.com\n" +
		"13\tbad time\tnot-a-time\t\t\n" +
		"short\tline\n"
	log, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(log.Records))
	}
	r := log.Records[0]
	if r.UserID != 12 || r.Query != "valid query" || r.ItemRank != 3 {
		t.Errorf("parsed record wrong: %+v", r)
	}
}

func TestSplit(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := g.Generate()
	train, test, err := log.Split(2.0 / 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Records)+len(test.Records) != len(log.Records) {
		t.Fatal("split lost records")
	}
	// Per user: train is a chronological prefix.
	trainBy, testBy := train.ByUser(), test.ByUser()
	for uid, trainRecs := range trainBy {
		testRecs := testBy[uid]
		if len(trainRecs) == 0 || len(testRecs) == 0 {
			continue
		}
		lastTrain := trainRecs[len(trainRecs)-1].Time
		for _, r := range testRecs {
			if r.Time.Before(lastTrain) {
				t.Fatalf("user %d has test record before training cut", uid)
			}
		}
		frac := float64(len(trainRecs)) / float64(len(trainRecs)+len(testRecs))
		if frac < 0.5 || frac > 0.75 {
			t.Errorf("user %d train fraction %f", uid, frac)
		}
	}
	if _, _, err := log.Split(0); err == nil {
		t.Error("Split(0) should fail")
	}
	if _, _, err := log.Split(1); err == nil {
		t.Error("Split(1) should fail")
	}
}

func TestTopActiveUsers(t *testing.T) {
	log := &Log{Records: []Record{
		{UserID: 1, Query: "a", Time: time.Now()},
		{UserID: 2, Query: "b", Time: time.Now()},
		{UserID: 2, Query: "c", Time: time.Now()},
		{UserID: 3, Query: "d", Time: time.Now()},
		{UserID: 3, Query: "e", Time: time.Now()},
		{UserID: 3, Query: "f", Time: time.Now()},
	}}
	top := log.TopActiveUsers(2)
	if len(top) != 2 || top[0] != 3 || top[1] != 2 {
		t.Errorf("TopActiveUsers = %v, want [3 2]", top)
	}
	if got := log.TopActiveUsers(10); len(got) != 3 {
		t.Errorf("TopActiveUsers(10) = %v", got)
	}
}

func TestFilterUsers(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := g.Generate()
	sub := log.FilterUsers([]int{1, 2})
	ids := sub.UserIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("FilterUsers kept %v", ids)
	}
}

func TestGenerateQueries(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := g.GenerateQueries(1000)
	if len(qs) != 1000 {
		t.Fatalf("got %d queries", len(qs))
	}
	distinct := map[string]struct{}{}
	for _, q := range qs {
		if q == "" {
			t.Fatal("empty query")
		}
		distinct[q] = struct{}{}
	}
	// Queries should be diverse.
	if len(distinct) < 500 {
		t.Errorf("only %d distinct of 1000", len(distinct))
	}
}

func TestUniqueQueries(t *testing.T) {
	log := &Log{Records: []Record{
		{UserID: 1, Query: "a", Time: time.Now()},
		{UserID: 1, Query: "a", Time: time.Now()},
		{UserID: 2, Query: "b", Time: time.Now()},
	}}
	uq := log.UniqueQueries()
	if len(uq) != 2 || uq[0] != "a" || uq[1] != "b" {
		t.Errorf("UniqueQueries = %v", uq)
	}
}
