package mux

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// tcpPair returns two ends of a real TCP connection — net.Pipe is fully
// synchronous, which deadlocks request/response protocols whose sides
// write concurrently (data one way, window credits the other).
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = ln.Close() }()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, derr := net.Dial("tcp", ln.Addr().String())
	<-done
	if derr != nil || err != nil {
		t.Fatalf("dial: %v / accept: %v", derr, err)
	}
	t.Cleanup(func() { _ = client.Close(); _ = server.Close() })
	return client, server
}

func echoHandler(_ context.Context, kind byte, req []byte) ([]byte, error) {
	if kind == KindPlain && string(req) == "fail" {
		return nil, errors.New("handler refused")
	}
	return append([]byte{kind}, req...), nil
}

// --- frame codec ---

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameOpen, Stream: 1, Payload: []byte{KindSecure}},
		{Type: FrameData, Stream: 3, Payload: bytes.Repeat([]byte("x"), MaxFramePayload)},
		{Type: FrameClose, Flags: FlagError, Stream: 5, Payload: []byte("boom")},
		{Type: FramePing, Payload: []byte("12345678")},
		{Type: FrameWindow, Stream: 7, Payload: []byte{0, 1, 0, 0}},
		{Type: FrameResume, Payload: []byte{0, 0, 0, 2}},
	}
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	for i, want := range frames {
		got, n, err := DecodeFrame(buf, MaxFramePayload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.Stream != want.Stream ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		// ReadFrame must agree with DecodeFrame.
		rf, err := ReadFrame(bytes.NewReader(buf[:n]), MaxFramePayload)
		if err != nil || rf.Type != want.Type || !bytes.Equal(rf.Payload, want.Payload) {
			t.Fatalf("frame %d: ReadFrame %+v, %v", i, rf, err)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestDecodeFrameHostile(t *testing.T) {
	mk := func(typ byte, length uint32) []byte {
		b := make([]byte, headerLen)
		b[0] = typ
		binary.BigEndian.PutUint32(b[6:10], length)
		return b
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"oversize", mk(FrameData, MaxFramePayload+1), ErrFrameTooLarge},
		{"zero type", mk(0, 0), ErrBadFrame},
		{"unknown type", mk(0xFF, 0), ErrBadFrame},
		{"truncated header", []byte{FrameData, 0, 0}, ErrBadFrame},
		{"short ping", mk(FramePing, 3), ErrBadFrame},
		{"fat open", mk(FrameOpen, 2), ErrBadFrame},
		{"odd window", mk(FrameWindow, 8), ErrBadFrame},
		{"truncated payload", mk(FrameData, 64), ErrBadFrame},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.b, MaxFramePayload); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// --- session RPC ---

func TestCallRoundTrip(t *testing.T) {
	cc, sc := tcpPair(t)
	go func() { _ = Serve(sc, echoHandler, Config{}) }()
	s := Client(cc, Config{})
	defer func() { _ = s.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Concurrent calls interleave on one conn; a large payload exercises
	// chunking and flow control (3× the per-frame cap, 2× the window).
	big := bytes.Repeat([]byte("abc"), MaxFramePayload)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			req := big
			if i%2 == 0 {
				req = []byte(fmt.Sprintf("req-%d", i))
			}
			resp, err := s.Call(ctx, KindPlain, req)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, append([]byte{KindPlain}, req...)) {
				errs <- fmt.Errorf("call %d: bad echo (%d bytes)", i, len(resp))
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.StreamsOpened(); got != 8 {
		t.Fatalf("StreamsOpened = %d, want 8", got)
	}
	if got := s.ActiveStreams(); got != 0 {
		t.Fatalf("ActiveStreams = %d after completion, want 0", got)
	}
}

func TestCallRemoteError(t *testing.T) {
	cc, sc := tcpPair(t)
	go func() { _ = Serve(sc, echoHandler, Config{}) }()
	s := Client(cc, Config{})
	defer func() { _ = s.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := s.Call(ctx, KindPlain, []byte("fail"))
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "handler refused") {
		t.Fatalf("err = %v, want RemoteError carrying the handler text", err)
	}
	// The session survives a per-stream failure.
	if resp, err := s.Call(ctx, KindPlain, []byte("ok")); err != nil || string(resp[1:]) != "ok" {
		t.Fatalf("call after remote error: %q, %v", resp, err)
	}
}

// TestHalfOpenDetectedByHeartbeat is the dead-peer satellite: the peer
// holds the TCP conn open but goes silent (a half-open conn after a NAT
// timeout or a wedged process), and the heartbeat must declare it dead.
func TestHalfOpenDetectedByHeartbeat(t *testing.T) {
	cc, sc := tcpPair(t)
	_ = sc // accepted but never served: silent peer, conn stays open
	s := Client(cc, Config{KeepAlive: 20 * time.Millisecond, DeadAfter: 60 * time.Millisecond})
	defer func() { _ = s.Close() }()
	select {
	case <-s.Done():
		if err := s.Err(); !errors.Is(err, ErrDeadPeer) {
			t.Fatalf("close cause = %v, want ErrDeadPeer", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("half-open conn never detected")
	}
	// Calls on the dead session fail as closed, not hang.
	if _, err := s.Call(context.Background(), KindPlain, []byte("q")); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Call on dead session = %v, want ErrSessionClosed", err)
	}
}

// TestRedialerResumesAfterConnKill is the reconnect satellite at the mux
// layer: kill the transport conn, and the next call must transparently
// re-dial, announce the resumed sessions, and succeed.
func TestRedialerResumesAfterConnKill(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = ln.Close() }()
	var resumed atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				_ = Serve(conn, echoHandler, Config{
					OnResume: func(n int) { resumed.Add(int64(n)) },
				})
			}()
		}
	}()
	rd := NewRedialer(func(ctx context.Context) (io.ReadWriteCloser, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", ln.Addr().String())
	}, Config{}, func() int { return 3 })
	defer func() { _ = rd.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := rd.Call(ctx, KindPlain, []byte("one")); err != nil {
		t.Fatalf("first call: %v", err)
	}
	rd.KillConn()
	resp, err := rd.Call(ctx, KindPlain, []byte("two"))
	if err != nil || string(resp[1:]) != "two" {
		t.Fatalf("call after kill: %q, %v", resp, err)
	}
	if got := rd.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
	if got := resumed.Load(); got != 3 {
		t.Fatalf("server observed %d resumed sessions, want 3", got)
	}
}

// --- hostile peers ---

// rawClient drives the server-side protocol by hand, for injecting
// frames no honest client sends.
type rawClient struct {
	t    *testing.T
	conn net.Conn
}

func (c *rawClient) send(f Frame) {
	c.t.Helper()
	if _, err := c.conn.Write(AppendFrame(nil, f)); err != nil {
		c.t.Fatalf("raw send: %v", err)
	}
}

func (c *rawClient) recv() Frame {
	c.t.Helper()
	_ = c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := ReadFrame(c.conn, MaxFramePayload)
	if err != nil {
		c.t.Fatalf("raw recv: %v", err)
	}
	return f
}

func TestServerDropsUnknownStreamFrames(t *testing.T) {
	cc, sc := tcpPair(t)
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(sc, echoHandler, Config{}) }()
	rc := &rawClient{t: t, conn: cc}
	// Data and Window for streams that were never opened: dropped, not
	// fatal — they are the tail of streams the peer already forgot.
	rc.send(Frame{Type: FrameData, Stream: 99, Payload: []byte("orphan")})
	rc.send(Frame{Type: FrameWindow, Stream: 77, Payload: []byte{0, 0, 1, 0}})
	rc.send(Frame{Type: FrameClose, Stream: 55})
	// The session must still serve a well-formed exchange.
	rc.send(Frame{Type: FrameOpen, Stream: 1, Payload: []byte{KindPlain}})
	rc.send(Frame{Type: FrameData, Stream: 1, Payload: []byte("q")})
	rc.send(Frame{Type: FrameClose, Stream: 1})
	for {
		f := rc.recv()
		if f.Type == FrameData && f.Stream == 1 {
			if string(f.Payload) != string(KindPlain)+"q" {
				t.Fatalf("bad echo %q", f.Payload)
			}
			break
		}
		// Window credits and pings may arrive first.
		if f.Type == FramePing {
			rc.send(Frame{Type: FramePong, Payload: f.Payload})
		}
	}
	select {
	case err := <-serveDone:
		t.Fatalf("session died on unknown-stream frames: %v", err)
	default:
	}
}

func TestServerKillsConnOnOversizeFrame(t *testing.T) {
	cc, sc := tcpPair(t)
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(sc, echoHandler, Config{}) }()
	hdr := make([]byte, headerLen)
	hdr[0] = FrameData
	binary.BigEndian.PutUint32(hdr[2:6], 1)
	binary.BigEndian.PutUint32(hdr[6:10], MaxFramePayload+1)
	if _, err := cc.Write(hdr); err != nil {
		t.Fatalf("write: %v", err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("close cause = %v, want ErrFrameTooLarge", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oversize frame did not kill the session")
	}
}

func TestServerKillsConnOnDuplicateStreamOpen(t *testing.T) {
	cc, sc := tcpPair(t)
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(sc, echoHandler, Config{}) }()
	rc := &rawClient{t: t, conn: cc}
	rc.send(Frame{Type: FrameOpen, Stream: 1, Payload: []byte{KindPlain}})
	rc.send(Frame{Type: FrameOpen, Stream: 1, Payload: []byte{KindPlain}})
	select {
	case err := <-serveDone:
		if !errors.Is(err, errProtocol) {
			t.Fatalf("close cause = %v, want protocol violation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate open did not kill the session")
	}
}

func TestServerKillsConnOnPingFlood(t *testing.T) {
	cc, sc := tcpPair(t)
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- Serve(sc, echoHandler, Config{
			PingBudget: 8,
			KeepAlive:  time.Hour, // never reset the budget window
		})
	}()
	tok := []byte("floodtok")
	go func() {
		for i := 0; i < 1000; i++ {
			if _, err := cc.Write(AppendFrame(nil, Frame{Type: FramePing, Payload: tok})); err != nil {
				return
			}
		}
	}()
	select {
	case err := <-serveDone:
		if !errors.Is(err, ErrPingFlood) {
			t.Fatalf("close cause = %v, want ErrPingFlood", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ping flood did not kill the session")
	}
}

// TestTooManyStreamsRefusedPerStream: the cap rejects the excess stream
// with a per-stream error and the session (and its other streams) live.
func TestTooManyStreamsRefusedPerStream(t *testing.T) {
	block := make(chan struct{})
	handler := func(_ context.Context, _ byte, req []byte) ([]byte, error) {
		if string(req) == "block" {
			<-block
		}
		return req, nil
	}
	cc, sc := tcpPair(t)
	go func() { _ = Serve(sc, handler, Config{MaxStreams: 1}) }()
	s := Client(cc, Config{})
	defer func() { _ = s.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	blocked := make(chan error, 1)
	go func() {
		_, err := s.Call(ctx, KindPlain, []byte("block"))
		blocked <- err
	}()
	// Wait for the first stream to occupy the server's only slot, then
	// the second call must be refused remotely but cleanly.
	var err error
	for i := 0; i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
		_, err = s.Call(ctx, KindPlain, []byte("x"))
		if err != nil {
			break
		}
	}
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "too many") {
		t.Fatalf("excess stream error = %v, want remote too-many-streams", err)
	}
	close(block)
	if err := <-blocked; err != nil {
		t.Fatalf("first stream should have survived the refusal: %v", err)
	}
}

// --- WebSocket adapter ---

// httpUpgradeServer serves /mux WebSocket upgrades into mux sessions,
// the same wiring the gateway's handleMuxUpgrade uses.
type httpUpgradeServer struct {
	handler Handler
}

func (u *httpUpgradeServer) serve(ln net.Listener) {
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := UpgradeWS(w, r)
		if err != nil {
			return
		}
		go func() { _ = Serve(conn, u.handler, Config{}) }()
	})}
	_ = srv.Serve(ln)
}

func TestWSAdapterCarriesSession(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		srv := &httpUpgradeServer{handler: echoHandler}
		srv.serve(ln)
	}()
	conn, err := DialWS("ws://"+ln.Addr().String()+"/mux", 5*time.Second)
	if err != nil {
		t.Fatalf("DialWS: %v", err)
	}
	s := Client(conn, Config{})
	defer func() { _ = s.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	big := bytes.Repeat([]byte("w"), 3*MaxFramePayload/2)
	resp, err := s.Call(ctx, KindSecure, big)
	if err != nil {
		t.Fatalf("call over websocket: %v", err)
	}
	if !bytes.Equal(resp, append([]byte{KindSecure}, big...)) {
		t.Fatalf("bad echo over websocket (%d bytes)", len(resp))
	}
}
