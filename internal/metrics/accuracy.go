package metrics

// PrecisionRecall computes the precision and recall of a retrieved result
// set against a reference set, per the paper's §5.4.2:
//
//	precision = |Ror ∩ Rxs| / |Rxs|
//	recall    = |Ror ∩ Rxs| / |Ror|
//
// where reference is Ror (results for the original query) and retrieved is
// Rxs (results returned by X-Search after filtering). Elements are compared
// by string identity (result URLs in practice). Empty sets yield 0 for the
// corresponding metric except the vacuous case where both are empty, which
// yields perfect scores.
func PrecisionRecall(reference, retrieved []string) (precision, recall float64) {
	if len(reference) == 0 && len(retrieved) == 0 {
		return 1, 1
	}
	ref := make(map[string]struct{}, len(reference))
	for _, r := range reference {
		ref[r] = struct{}{}
	}
	inter := 0
	seen := make(map[string]struct{}, len(retrieved))
	for _, r := range retrieved {
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		if _, ok := ref[r]; ok {
			inter++
		}
	}
	if len(retrieved) > 0 {
		precision = float64(inter) / float64(len(seen))
	}
	if len(ref) > 0 {
		recall = float64(inter) / float64(len(ref))
	}
	return precision, recall
}

// F1 returns the harmonic mean of precision and recall, or 0 when both are 0.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// RateCounter tallies binary outcomes (success / total) and reports a rate.
// It backs the re-identification rate metric (§5.4.1). The zero value is
// ready to use.
type RateCounter struct {
	success int
	total   int
}

// Observe records one outcome.
func (r *RateCounter) Observe(ok bool) {
	r.total++
	if ok {
		r.success++
	}
}

// Rate returns success/total, or 0 when nothing was observed.
func (r *RateCounter) Rate() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.success) / float64(r.total)
}

// Total returns the number of observations.
func (r *RateCounter) Total() int { return r.total }

// Successes returns the number of positive observations.
func (r *RateCounter) Successes() int { return r.success }
