// Command xsearch-bench regenerates every figure of the paper's evaluation
// (Figures 1, 3, 4, 5, 6, 7) plus the ablations called out in DESIGN.md,
// printing each as an aligned data table with a paper-vs-measured summary.
// Its output is the source of EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xsearch/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xsearch-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figs     = flag.String("figs", "1,3,4,5,6,7,ablations,anon,scaling,fanout,fleet,pipeline,autoscale,batch,answer,obs,tls,mux", "comma-separated figures to run")
		quick    = flag.Bool("quick", false, "scaled-down sizes (CI-friendly)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		useHTTP  = flag.Bool("http", false, "Figure 5 over real loopback HTTP (bare-metal runs)")
		baseline = flag.String("baseline", "", "write the scaling ablation's numbers to this JSON file (perf regression baseline)")
	)
	flag.Parse()

	fixCfg := experiments.DefaultFixtureConfig()
	fixCfg.Seed = *seed
	if *quick {
		fixCfg.Users, fixCfg.MeanQueries, fixCfg.ActiveUsers = 80, 150, 50
	}
	fmt.Printf("# X-Search evaluation harness (seed=%d, quick=%t)\n", *seed, *quick)
	start := time.Now()
	fixture, err := experiments.NewFixture(fixCfg)
	if err != nil {
		return err
	}
	stats := fixture.Log.Stats()
	fmt.Printf("# dataset: %d records, %d users, %d unique queries (train %d / test %d)\n\n",
		stats.Records, stats.Users, stats.UniqueQueries,
		len(fixture.Train.Records), len(fixture.Test.Records))

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}

	if want["1"] {
		if err := runFig1(fixture, *quick, *seed); err != nil {
			return err
		}
	}
	if want["3"] {
		if err := runFig3(fixture, *quick); err != nil {
			return err
		}
	}
	if want["4"] {
		if err := runFig4(fixture, *quick, *seed); err != nil {
			return err
		}
	}
	if want["5"] {
		if err := runFig5(fixture, *quick, *seed, *useHTTP); err != nil {
			return err
		}
	}
	if want["6"] {
		if err := runFig6(*quick, *seed); err != nil {
			return err
		}
	}
	if want["7"] {
		if err := runFig7(fixture, *quick, *seed); err != nil {
			return err
		}
	}
	if want["ablations"] {
		if err := runAblations(fixture, *quick); err != nil {
			return err
		}
	}
	if want["anon"] {
		if err := runAnonBench(fixture, *quick); err != nil {
			return err
		}
	}
	var base *scalingBaseline
	if *baseline != "" {
		base = &scalingBaseline{}
		// Preload the existing baseline so running only one of the
		// scaling/fanout figures refreshes its half without zeroing the
		// other's committed numbers.
		if raw, err := os.ReadFile(*baseline); err == nil {
			_ = json.Unmarshal(raw, base)
		}
		base.GeneratedBy = "cmd/xsearch-bench -figs scaling,fanout,fleet,pipeline,autoscale,batch,answer,obs,tls,mux -baseline"
	}
	if want["scaling"] {
		if err := runScaling(*quick, *seed, base); err != nil {
			return err
		}
	}
	if want["fanout"] {
		if err := runFanout(*quick, base); err != nil {
			return err
		}
	}
	if want["fleet"] {
		if err := runFleetFig(*quick, *seed, base); err != nil {
			return err
		}
	}
	if want["pipeline"] {
		if err := runPipelineFig(*quick, *seed, base); err != nil {
			return err
		}
	}
	if want["autoscale"] {
		if err := runAutoscaleFig(*quick, *seed, base); err != nil {
			return err
		}
	}
	if want["batch"] {
		if err := runBatchFig(*quick, *seed, base); err != nil {
			return err
		}
	}
	if want["answer"] {
		if err := runAnswerFig(*quick, *seed, base); err != nil {
			return err
		}
	}
	if want["obs"] {
		if err := runObsFig(*quick, *seed, base); err != nil {
			return err
		}
	}
	if want["tls"] {
		if err := runTLSFig(*quick, *seed, base); err != nil {
			return err
		}
	}
	if want["mux"] {
		if err := runMuxFig(*quick, *seed, base); err != nil {
			return err
		}
	}
	if base != nil {
		raw, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baseline, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("# baseline written to %s\n\n", *baseline)
	}
	fmt.Printf("# total harness time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFig1(f *experiments.Fixture, quick bool, seed uint64) error {
	cfg := experiments.DefaultFig1Config()
	cfg.Seed = seed
	if quick {
		cfg.Fakes = 500
	}
	res, err := experiments.RunFig1(f, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Figure.Render())
	fmt.Printf("# median max-similarity: PEAS=%.3f TMN=%.3f GooPIR=%.3f X-Search=%.3f\n",
		res.PEASMedian, res.TMNMedian, res.GooPIRMedian, res.XSearchMedian)
	fmt.Printf("# paper: almost all PEAS/TMN fakes are 'original' (never appear in the log);\n")
	fmt.Printf("# X-Search fakes are verbatim past queries (similarity 1 by construction).\n\n")
	return nil
}

func runFig3(f *experiments.Fixture, quick bool) error {
	cfg := experiments.DefaultFig3Config()
	if quick {
		cfg.TestQueries = 250
	}
	res, err := experiments.RunFig3(f, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Figure.Render())
	improvement := 0.0
	n := 0
	for k := 1; k <= cfg.MaxK; k++ {
		if res.PEAS[k] > 0 {
			improvement += (res.PEAS[k] - res.XSearch[k]) / res.PEAS[k]
			n++
		}
	}
	if n > 0 {
		improvement = improvement / float64(n) * 100
	}
	fmt.Printf("# k=0 (unlinkability only) rate: %.3f  [paper: ~0.40]\n", res.RateAtK0)
	fmt.Printf("# k=1: X-Search=%.3f PEAS=%.3f      [paper: 0.16 vs ~0.20]\n",
		res.XSearch[1], res.PEAS[1])
	fmt.Printf("# mean X-Search improvement over PEAS (k>=1): %.1f%%  [paper: 23-35%%]\n\n", improvement)
	return nil
}

func runFig4(f *experiments.Fixture, quick bool, seed uint64) error {
	cfg := experiments.DefaultFig4Config()
	cfg.Seed = seed
	if quick {
		cfg.Queries, cfg.DocsPerTopic = 50, 100
	}
	res, err := experiments.RunFig4(f, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Figure.Render())
	fmt.Printf("# k=2: precision=%.3f recall=%.3f  [paper: both > 0.80]\n\n",
		res.PrecisionAtK2, res.RecallAtK2)
	return nil
}

func runFig5(f *experiments.Fixture, quick bool, seed uint64, useHTTP bool) error {
	cfg := experiments.DefaultFig5Config()
	cfg.Seed = seed
	cfg.UseHTTP = useHTTP
	if quick {
		cfg.Duration = time.Second
		cfg.XSearchRates = []float64{1000, 5000, 10000, 20000, 30000}
		cfg.PEASRates = []float64{250, 1000, 2000, 4000}
		cfg.TorRates = []float64{50, 100, 200, 400, 800}
	}
	res, err := experiments.RunFig5(f, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Figure.Render())
	fmt.Printf("# max rate with sub-second p50: X-Search=%.0f PEAS=%.0f Tor=%.0f req/s\n",
		res.MaxSubSecondRate["X-Search"], res.MaxSubSecondRate["PEAS"], res.MaxSubSecondRate["Tor"])
	fmt.Printf("# paper: X-Search 25,000; PEAS ~1,000; Tor ~100 (shape: XS >> PEAS >> Tor)\n\n")
	return nil
}

func runFig6(quick bool, seed uint64) error {
	cfg := experiments.DefaultFig6Config()
	cfg.Seed = seed
	if quick {
		cfg.MaxQueries = 200000
		cfg.Checkpoints = 20
	}
	res, err := experiments.RunFig6(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Figure.Render())
	fmt.Printf("# %d queries stored in %.1f MB; fits 90 MB EPC: %t  [paper: >1M fit]\n\n",
		res.QueriesStored, float64(res.BytesAtMax)/(1<<20), res.FitsEPC)
	return nil
}

func runFig7(f *experiments.Fixture, quick bool, seed uint64) error {
	cfg := experiments.DefaultFig7Config()
	cfg.Seed = seed
	if quick {
		cfg.Queries = 50
		cfg.Scale = 0.1
	}
	res, err := experiments.RunFig7(f, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Figure.Render())
	fmt.Printf("# medians (s): Direct=%.3f X-Search=%.3f Tor=%.3f  [paper: XS 0.577, Tor 1.06]\n",
		res.Median["Direct"], res.Median["X-Search"], res.Median["Tor"])
	fmt.Printf("# p99     (s): Direct=%.3f X-Search=%.3f Tor=%.3f  [paper: XS 0.873, Tor ~3]\n\n",
		res.P99["Direct"], res.P99["X-Search"], res.P99["Tor"])
	return nil
}

func runAblations(f *experiments.Fixture, quick bool) error {
	tests := 400
	if quick {
		tests = 200
	}
	realRate, synthRate, err := experiments.AblationFakeSource(f, 3, tests)
	if err != nil {
		return err
	}
	fmt.Printf("# Ablation: fake source at k=3 — re-identification rate\n")
	fmt.Printf("real past queries (X-Search)    %.3f\n", realRate)
	fmt.Printf("co-occurrence synthetic (PEAS)  %.3f\n\n", synthRate)

	withF, withoutF, err := experiments.AblationFiltering(f, 3, 40, 20)
	if err != nil {
		return err
	}
	fmt.Printf("# Ablation: Algorithm 2 filtering at k=3 — precision vs the\n")
	fmt.Printf("# unobfuscated query's results\n")
	fmt.Printf("with filtering     %.3f\n", withF)
	fmt.Printf("without filtering  %.3f\n\n", withoutF)

	pts, err := experiments.AblationHistorySize(f, 3, []int{100, 1000, 10000}, tests/2)
	if err != nil {
		return err
	}
	fmt.Printf("# Ablation: history window size at k=3\n")
	fmt.Printf("capacity  bytes     reident_rate\n")
	for _, p := range pts {
		fmt.Printf("%-8d  %-8d  %.3f\n", p.Capacity, p.Bytes, p.Rate)
	}
	fmt.Println()

	withCost, withoutCost, err := experiments.AblationTransitionCost(3*time.Microsecond, 3000)
	if err != nil {
		return err
	}
	fmt.Printf("# Ablation: enclave transition cost (3us per crossing, serial ecalls)\n")
	fmt.Printf("with cost     %.0f req/s\n", withCost)
	fmt.Printf("without cost  %.0f req/s\n\n", withoutCost)
	return nil
}

// scalingBaseline is the schema of BENCH_baseline.json: the scaling and
// fan-out ablations' headline numbers, committed so future PRs have a
// perf trajectory to compare against.
type scalingBaseline struct {
	GeneratedBy         string  `json:"generated_by"`
	Queries             int     `json:"queries"`
	Repeats             int     `json:"repeats"`
	ColdNsPerQuery      int64   `json:"cold_ns_per_query"`
	PooledNsPerQuery    int64   `json:"pooled_ns_per_query"`
	CachedHitNsPerQuery int64   `json:"cached_hit_ns_per_query"`
	ColdThroughputRPS   float64 `json:"cold_throughput_rps"`
	PooledThroughputRPS float64 `json:"pooled_throughput_rps"`
	CachedThroughputRPS float64 `json:"cached_throughput_rps"`
	PoolReuseRatio      float64 `json:"pool_reuse_ratio"`
	CacheHitRatio       float64 `json:"cache_hit_ratio"`
	CachedSpeedupVsCold float64 `json:"cached_speedup_vs_cold"`
	// Fan-out ablation: single-flight coalescing against a capacity-
	// limited engine, and failover throughput across the three phases
	// (both healthy / one dead / revived).
	CoalesceBaselineRPS float64 `json:"coalesce_baseline_rps"`
	CoalesceRPS         float64 `json:"coalesce_rps"`
	CoalesceSpeedup     float64 `json:"coalesce_speedup"`
	CoalesceRatio       float64 `json:"coalesce_ratio"`
	FanoutHealthyRPS    float64 `json:"fanout_healthy_rps"`
	FanoutDegradedRPS   float64 `json:"fanout_degraded_rps"`
	FanoutRecoveredRPS  float64 `json:"fanout_recovered_rps"`
	FanoutDegradedErrs  int     `json:"fanout_degraded_errors"`
	// Fleet ablation: throughput at 1/2/4 shards behind the session-
	// routing gateway, the 4-vs-1 speedup, and the kill-one-shard
	// availability run (errors must stay zero and the per-shard EPC
	// invariant heap == history + cache + index must hold).
	Fleet1ShardRPS   float64 `json:"fleet_1shard_rps"`
	Fleet2ShardRPS   float64 `json:"fleet_2shard_rps"`
	Fleet4ShardRPS   float64 `json:"fleet_4shard_rps"`
	FleetSpeedup     float64 `json:"fleet_speedup"`
	FleetKillRPS     float64 `json:"fleet_kill_rps"`
	FleetKillErrors  int     `json:"fleet_kill_errors"`
	FleetInvariantOK bool    `json:"fleet_epc_invariant_ok"`
	// Pipeline ablation: blocking vs async-ocall hot path under TCS
	// pressure, and hedging's p99 with one artificially slow upstream.
	PipelineSyncRPS     float64 `json:"pipeline_sync_rps"`
	PipelineAsyncRPS    float64 `json:"pipeline_async_rps"`
	PipelineSpeedup     float64 `json:"pipeline_speedup"`
	HedgeNoHedgeP99Ns   int64   `json:"hedge_nohedge_p99_ns"`
	HedgeP99Ns          int64   `json:"hedge_p99_ns"`
	HedgeP99Cut         float64 `json:"hedge_p99_cut"`
	HedgeWins           uint64  `json:"hedge_wins"`
	PipelineInvariantOK bool    `json:"pipeline_epc_invariant_ok"`
	// Autoscale ablation: the load ramp's shard trajectory, elastic peak
	// throughput against the statically provisioned max-size line, requests
	// lost across scale events (must be zero), scale-event counts, and the
	// EPC invariant on both sides of every sealed scale-down handoff.
	AutoscalePeakShards  int     `json:"autoscale_peak_shards"`
	AutoscaleFinalShards int     `json:"autoscale_final_shards"`
	AutoscaleRampMs      int64   `json:"autoscale_ramp_ms"`
	AutoscaleElasticRPS  float64 `json:"autoscale_elastic_peak_rps"`
	AutoscaleStaticRPS   float64 `json:"autoscale_static_peak_rps"`
	AutoscalePeakRatio   float64 `json:"autoscale_peak_ratio"`
	AutoscaleLost        int64   `json:"autoscale_lost"`
	AutoscaleScaleUps    uint64  `json:"autoscale_scale_ups"`
	AutoscaleScaleDowns  uint64  `json:"autoscale_scale_downs"`
	AutoscaleInvariantOK bool    `json:"autoscale_epc_invariant_ok"`
	// Batch ablation: vectorized ecall submission against the unbatched
	// async pipeline at the same TCS count and transition cost, plus the
	// full batch-size/latency curve.
	BatchUnbatchedRPS float64           `json:"batch_unbatched_rps"`
	BatchUnbatchedP50 int64             `json:"batch_unbatched_p50_ns"`
	BatchBestSpeedup  float64           `json:"batch_best_speedup"`
	BatchInvariantOK  bool              `json:"batch_epc_invariant_ok"`
	BatchCurve        []batchCurvePoint `json:"batch_curve"`
	// Answer-tier ablation: the in-enclave index against the no-index
	// baseline on the identical repeat-heavy workload, one curve point per
	// repeat ratio.
	AnswerBestUpstreamCut float64            `json:"answer_best_upstream_cut"`
	AnswerInvariantOK     bool               `json:"answer_epc_invariant_ok"`
	AnswerCurve           []answerCurvePoint `json:"answer_curve"`
	// Observability ablation: the identical async workload with the
	// observability layer off and on. Overhead must stay under 5%.
	ObsBaselineRPS float64  `json:"obs_baseline_rps"`
	ObsEnabledRPS  float64  `json:"obs_enabled_rps"`
	ObsOverhead    float64  `json:"obs_overhead"`
	ObsBaselineP50 int64    `json:"obs_baseline_p50_ns"`
	ObsEnabledP50  int64    `json:"obs_enabled_p50_ns"`
	ObsStages      []string `json:"obs_stages_covered"`
	ObsEvents      int      `json:"obs_events_logged"`
	ObsInvariantOK bool     `json:"obs_epc_invariant_ok"`
	// TLS transport ablation: pinned-root HTTPS on the blocking path vs
	// the async tls_step pipeline at the same TCS count, the trusted
	// session pool's hit rate, and hedging with both upstreams HTTPS.
	TLSSyncRPS           float64 `json:"tls_sync_rps"`
	TLSAsyncRPS          float64 `json:"tls_async_rps"`
	TLSSpeedup           float64 `json:"tls_speedup"`
	TLSSessionReuseRatio float64 `json:"tls_session_reuse_ratio"`
	TLSNoHedgeP99Ns      int64   `json:"tls_nohedge_p99_ns"`
	TLSHedgeP99Ns        int64   `json:"tls_hedge_p99_ns"`
	TLSHedgeP99Cut       float64 `json:"tls_hedge_p99_cut"`
	TLSHedgeWins         uint64  `json:"tls_hedge_wins"`
	TLSInvariantOK       bool    `json:"tls_epc_invariant_ok"`
	// Mux client-edge ablation: marginal bytes per attested session on a
	// dedicated conn vs the shared mux conn, mux secure-query p95 against
	// plain HTTP's, and the kill-mid-session resume accounting (lost and
	// re-attestations must be zero).
	MuxDedicatedBytesPerSession int64   `json:"mux_dedicated_bytes_per_session"`
	MuxSharedBytesPerSession    int64   `json:"mux_shared_bytes_per_session"`
	MuxSessionsAtEqualMem       float64 `json:"mux_sessions_at_equal_memory"`
	MuxHTTPP95Ns                int64   `json:"mux_http_p95_ns"`
	MuxP95Ns                    int64   `json:"mux_p95_ns"`
	MuxP95Ratio                 float64 `json:"mux_p95_ratio"`
	MuxKillLost                 int     `json:"mux_kill_lost"`
	MuxReconnects               uint64  `json:"mux_reconnects"`
	MuxResumes                  uint64  `json:"mux_resumes"`
	MuxReattestations           uint64  `json:"mux_reattestations"`
}

// batchCurvePoint is one committed point of the batch-size/latency curve.
type batchCurvePoint struct {
	BatchMax     int     `json:"batch_max"`
	RPS          float64 `json:"rps"`
	Speedup      float64 `json:"speedup"`
	P50Ns        int64   `json:"p50_ns"`
	P95Ns        int64   `json:"p95_ns"`
	OccupancyP50 float64 `json:"occupancy_p50"`
	OccupancyP95 float64 `json:"occupancy_p95"`
}

// answerCurvePoint is one committed point of the answer-tier curve.
type answerCurvePoint struct {
	RepeatRatio      float64 `json:"repeat_ratio"`
	LocalHitRatio    float64 `json:"local_hit_ratio"`
	BaselineUpstream uint64  `json:"baseline_upstream_reqs"`
	IndexedUpstream  uint64  `json:"indexed_upstream_reqs"`
	UpstreamCut      float64 `json:"upstream_cut"`
	BaselineP50Ns    int64   `json:"baseline_p50_ns"`
	IndexedP50Ns     int64   `json:"indexed_p50_ns"`
	BaselineP99Ns    int64   `json:"baseline_p99_ns"`
	IndexedP99Ns     int64   `json:"indexed_p99_ns"`
}

func runScaling(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultConnScalingConfig()
	cfg.Seed = seed
	if quick {
		cfg.Queries, cfg.Repeats = 32, 3
	}
	res, err := experiments.RunConnScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Scaling ablation: engine transport per proxy configuration\n")
	fmt.Printf("# (%d distinct queries x %d passes, loopback engine)\n", cfg.Queries, cfg.Repeats)
	fmt.Printf("%-14s  %-10s  %-12s  %-12s  %-12s  %-6s  %-6s\n",
		"variant", "req/s", "mean", "first-pass", "repeat-pass", "reuse", "hits")
	for _, v := range res.Variants {
		fmt.Printf("%-14s  %-10.0f  %-12v  %-12v  %-12v  %-6.2f  %-6.2f\n",
			v.Name, v.Throughput,
			v.MeanLatency.Round(time.Microsecond),
			v.FirstPassMean.Round(time.Microsecond),
			v.RepeatPassMean.Round(time.Microsecond),
			v.ReuseRatio, v.HitRatio)
	}
	fmt.Printf("# cached-hit latency %v vs cold %v: %.1fx speedup\n\n",
		res.CachedHitLatency.Round(time.Microsecond),
		res.ColdLatency.Round(time.Microsecond), res.CachedSpeedup)
	if base != nil {
		base.Queries = cfg.Queries
		base.Repeats = cfg.Repeats
		base.ColdNsPerQuery = res.Variants[0].MeanLatency.Nanoseconds()
		base.PooledNsPerQuery = res.Variants[1].MeanLatency.Nanoseconds()
		base.CachedHitNsPerQuery = res.CachedHitLatency.Nanoseconds()
		base.ColdThroughputRPS = res.Variants[0].Throughput
		base.PooledThroughputRPS = res.Variants[1].Throughput
		base.CachedThroughputRPS = res.Variants[2].Throughput
		base.PoolReuseRatio = res.Variants[1].ReuseRatio
		base.CacheHitRatio = res.Variants[2].HitRatio
		base.CachedSpeedupVsCold = res.CachedSpeedup
	}
	return nil
}

func runFanout(quick bool, base *scalingBaseline) error {
	cfg := experiments.DefaultFanoutConfig()
	if quick {
		cfg.CoalesceWorkers, cfg.CoalesceRequests = 16, 6
		cfg.FailoverRequests = 120
	}
	res, err := experiments.RunFanout(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Fan-out ablation A: single-flight coalescing, %d workers x %d identical\n",
		cfg.CoalesceWorkers, cfg.CoalesceRequests)
	fmt.Printf("# queries against a capacity-limited engine (%v serialized service time)\n", cfg.EngineService)
	fmt.Printf("%-16s  %-10s  %-12s\n", "variant", "req/s", "engine trips")
	fmt.Printf("%-16s  %-10.0f  %-12d\n", "no-coalesce", res.CoalesceBaselineRPS, res.EngineTripsBaseline)
	fmt.Printf("%-16s  %-10.0f  %-12d\n", "coalesce", res.CoalesceRPS, res.EngineTripsCoalesce)
	fmt.Printf("# coalescing: %.1fx throughput, %.0f%% of requests shared a flight\n\n",
		res.CoalesceSpeedup, res.CoalesceRatio*100)

	fmt.Printf("# Fan-out ablation B: two upstreams, one killed mid-run then revived\n")
	fmt.Printf("# (breaker: %d failure(s) to open, %v cooldown; %d requests per phase)\n",
		cfg.FailThreshold, cfg.Cooldown, cfg.FailoverRequests)
	fmt.Printf("%-16s  %-10s  %-8s\n", "phase", "req/s", "errors")
	fmt.Printf("%-16s  %-10.0f  %-8s\n", "both healthy", res.HealthyRPS,
		fmt.Sprintf("A/B %.0f/%.0f%%", res.HealthyShareA*100, res.HealthyShareB*100))
	fmt.Printf("%-16s  %-10.0f  %-8d\n", "one dead", res.DegradedRPS, res.DegradedErrors)
	fmt.Printf("%-16s  %-10.0f  %-8s\n", "revived", res.RecoveredRPS,
		fmt.Sprintf("B took %d", res.RevivedServed))
	fmt.Printf("# failover held %d/%d requests through the dead upstream; breaker re-probe\n",
		cfg.FailoverRequests-res.DegradedErrors, cfg.FailoverRequests)
	fmt.Printf("# returned the revived upstream to rotation\n\n")
	if base != nil {
		base.CoalesceBaselineRPS = res.CoalesceBaselineRPS
		base.CoalesceRPS = res.CoalesceRPS
		base.CoalesceSpeedup = res.CoalesceSpeedup
		base.CoalesceRatio = res.CoalesceRatio
		base.FanoutHealthyRPS = res.HealthyRPS
		base.FanoutDegradedRPS = res.DegradedRPS
		base.FanoutRecoveredRPS = res.RecoveredRPS
		base.FanoutDegradedErrs = res.DegradedErrors
	}
	return nil
}

func runFleetFig(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultFleetConfig()
	cfg.Seed = seed
	if quick {
		cfg.Requests, cfg.KillRequests = 240, 240
	}
	res, err := experiments.RunFleet(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Fleet ablation A: throughput vs shard count (%d workers, %d requests,\n",
		cfg.Workers, cfg.Requests)
	fmt.Printf("# %v engine service time, %d enclave threads per shard)\n",
		cfg.EngineService, cfg.TCSPerShard)
	fmt.Printf("%-8s  %-10s  %-10s  %-12s\n", "shards", "req/s", "speedup", "epc invariant")
	invariantOK := true
	for _, pt := range res.Points {
		speedup := 1.0
		if base := res.Points[0].Throughput; base > 0 {
			speedup = pt.Throughput / base
		}
		fmt.Printf("%-8d  %-10.0f  %-10.2f  %-12t\n", pt.Shards, pt.Throughput, speedup, pt.InvariantOK)
		invariantOK = invariantOK && pt.InvariantOK
	}
	fmt.Printf("# %d shards deliver %.1fx the single-enclave throughput\n\n",
		res.Points[len(res.Points)-1].Shards, res.Speedup)

	fmt.Printf("# Fleet ablation B: shard %d of %d killed mid-run (no drain, no warning)\n",
		res.KilledShard, cfg.KillShards)
	fmt.Printf("%-10s  %-10s  %-8s  %-12s\n", "requests", "req/s", "failed", "epc invariant")
	fmt.Printf("%-10d  %-10.0f  %-8d  %-12t\n", res.KillTotal, res.KillRPS, res.KillErrors, res.KillInvariantOK)
	fmt.Printf("# gateway failover held %d/%d requests through the crash\n\n",
		res.KillTotal-res.KillErrors, res.KillTotal)
	invariantOK = invariantOK && res.KillInvariantOK
	if base != nil {
		for _, pt := range res.Points {
			switch pt.Shards {
			case 1:
				base.Fleet1ShardRPS = pt.Throughput
			case 2:
				base.Fleet2ShardRPS = pt.Throughput
			case 4:
				base.Fleet4ShardRPS = pt.Throughput
			}
		}
		base.FleetSpeedup = res.Speedup
		base.FleetKillRPS = res.KillRPS
		base.FleetKillErrors = res.KillErrors
		base.FleetInvariantOK = invariantOK
	}
	return nil
}

func runPipelineFig(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultPipelineConfig()
	cfg.Seed = seed
	if quick {
		cfg.Requests, cfg.HedgeRequests = 200, 120
	}
	res, err := experiments.RunPipeline(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Pipeline ablation A: blocking vs async-ocall hot path, TCS-bound\n")
	fmt.Printf("# (%d enclave threads, %v engine service, %d workers x %d requests)\n",
		cfg.TCSCount, cfg.EngineService, cfg.Workers, cfg.Requests)
	fmt.Printf("%-14s  %-10s\n", "variant", "req/s")
	fmt.Printf("%-14s  %-10.0f\n", "sync (block)", res.SyncRPS)
	fmt.Printf("%-14s  %-10.0f\n", "async (rings)", res.AsyncRPS)
	fmt.Printf("# releasing the TCS during the engine round trip buys %.1fx throughput\n\n", res.Speedup)

	fmt.Printf("# Pipeline ablation B: hedged requests, upstreams %v (fast) and %v (slow),\n",
		cfg.FastService, cfg.SlowService)
	fmt.Printf("# hedge after %v, %d sequential requests\n", cfg.HedgeDelay, cfg.HedgeRequests)
	fmt.Printf("%-10s  %-12s  %-12s\n", "variant", "p50", "p99")
	fmt.Printf("%-10s  %-12v  %-12v\n", "no hedge",
		res.NoHedgeP50.Round(time.Microsecond), res.NoHedgeP99.Round(time.Microsecond))
	fmt.Printf("%-10s  %-12v  %-12v\n", "hedge",
		res.HedgeP50.Round(time.Microsecond), res.HedgeP99.Round(time.Microsecond))
	fmt.Printf("# hedging cut p99 %.1fx (%d hedges issued, %d won); EPC invariant ok: %t\n\n",
		res.P99Cut, res.HedgeAttempts, res.HedgeWins, res.InvariantOK)
	if base != nil {
		base.PipelineSyncRPS = res.SyncRPS
		base.PipelineAsyncRPS = res.AsyncRPS
		base.PipelineSpeedup = res.Speedup
		base.HedgeNoHedgeP99Ns = res.NoHedgeP99.Nanoseconds()
		base.HedgeP99Ns = res.HedgeP99.Nanoseconds()
		base.HedgeP99Cut = res.P99Cut
		base.HedgeWins = res.HedgeWins
		base.PipelineInvariantOK = res.InvariantOK
	}
	return nil
}

func runTLSFig(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultTLSConfig()
	cfg.Seed = seed
	if quick {
		cfg.Requests, cfg.HedgeRequests = 200, 120
	}
	res, err := experiments.RunTLS(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# TLS ablation A: in-enclave TLS, blocking vs async tls_step transport, TCS-bound\n")
	fmt.Printf("# (%d enclave threads, %v engine service, %d workers x %d requests, pinned-root HTTPS)\n",
		cfg.TCSCount, cfg.EngineService, cfg.Workers, cfg.Requests)
	fmt.Printf("%-14s  %-10s\n", "variant", "req/s")
	fmt.Printf("%-14s  %-10.0f\n", "sync (block)", res.SyncRPS)
	fmt.Printf("%-14s  %-10.0f\n", "async (rings)", res.AsyncRPS)
	fmt.Printf("# parking TLS flights between ciphertext steps buys %.1fx throughput; session reuse %.2f\n\n",
		res.Speedup, res.SessionReuseRatio)

	fmt.Printf("# TLS ablation B: hedged HTTPS requests, upstreams %v (fast) and %v (slow),\n",
		cfg.FastService, cfg.SlowService)
	fmt.Printf("# hedge after %v, %d sequential requests\n", cfg.HedgeDelay, cfg.HedgeRequests)
	fmt.Printf("%-10s  %-12s  %-12s\n", "variant", "p50", "p99")
	fmt.Printf("%-10s  %-12v  %-12v\n", "no hedge",
		res.NoHedgeP50.Round(time.Microsecond), res.NoHedgeP99.Round(time.Microsecond))
	fmt.Printf("%-10s  %-12v  %-12v\n", "hedge",
		res.HedgeP50.Round(time.Microsecond), res.HedgeP99.Round(time.Microsecond))
	fmt.Printf("# hedging cut p99 %.1fx (%d hedges issued, %d won); EPC invariant ok: %t\n\n",
		res.P99Cut, res.HedgeAttempts, res.HedgeWins, res.InvariantOK)
	if base != nil {
		base.TLSSyncRPS = res.SyncRPS
		base.TLSAsyncRPS = res.AsyncRPS
		base.TLSSpeedup = res.Speedup
		base.TLSSessionReuseRatio = res.SessionReuseRatio
		base.TLSNoHedgeP99Ns = res.NoHedgeP99.Nanoseconds()
		base.TLSHedgeP99Ns = res.HedgeP99.Nanoseconds()
		base.TLSHedgeP99Cut = res.P99Cut
		base.TLSHedgeWins = res.HedgeWins
		base.TLSInvariantOK = res.InvariantOK
	}
	return nil
}

func runMuxFig(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultMuxConfig()
	cfg.Seed = seed
	if quick {
		cfg.Sessions = 48
		cfg.Brokers, cfg.Queries, cfg.KillQueries = 4, 120, 60
	}
	res, err := experiments.RunMux(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Mux ablation A: gateway memory per attested session, dedicated conn vs\n")
	fmt.Printf("# shared mux conn (%d sessions per variant)\n", cfg.Sessions)
	fmt.Printf("%-16s  %-14s  %-10s\n", "edge", "bytes/session", "conns held")
	fmt.Printf("%-16s  %-14d  %-10d\n", "conn-per-session", res.DedicatedBytesPerSession, cfg.Sessions)
	fmt.Printf("%-16s  %-14d  %-10d\n", "mux (shared)", res.SharedBytesPerSession, res.ConnsHeld)
	fmt.Printf("# at equal memory the mux edge holds %.0fx the sessions\n\n", res.SessionsAtEqualMem)

	fmt.Printf("# Mux ablation B: secure-query latency, plain HTTP vs mux streams\n")
	fmt.Printf("# (%d attested brokers x %d queries, %v engine service)\n",
		cfg.Brokers, cfg.Queries, cfg.EngineService)
	fmt.Printf("%-10s  %-10s  %-12s  %-12s\n", "transport", "req/s", "p50", "p95")
	fmt.Printf("%-10s  %-10.0f  %-12v  %-12v\n", "http",
		res.HTTPRPS, res.HTTPP50.Round(time.Microsecond), res.HTTPP95.Round(time.Microsecond))
	fmt.Printf("%-10s  %-10.0f  %-12v  %-12v\n", "mux",
		res.MuxRPS, res.MuxP50.Round(time.Microsecond), res.MuxP95.Round(time.Microsecond))
	fmt.Printf("# mux p95 is %.2fx HTTP's (claim: within 1.20x)\n\n", res.P95Ratio)

	fmt.Printf("# Mux ablation C: transport conn killed under every live session at\n")
	fmt.Printf("# query %d of %d\n", cfg.KillQueries/3, cfg.KillQueries)
	fmt.Printf("%-12s  %-8s  %-12s  %-10s  %-14s\n", "queries", "lost", "reconnects", "resumes", "re-attestations")
	fmt.Printf("%-12d  %-8d  %-12d  %-10d  %-14d\n",
		res.KillQueries, res.Lost, res.Reconnects, res.Resumes, res.Reattestations)
	fmt.Printf("# every query completed on a re-dialed conn; the attested channels never\n")
	fmt.Printf("# re-keyed (their secrets live in the broker and the enclave, not the carrier)\n\n")
	if base != nil {
		base.MuxDedicatedBytesPerSession = res.DedicatedBytesPerSession
		base.MuxSharedBytesPerSession = res.SharedBytesPerSession
		base.MuxSessionsAtEqualMem = res.SessionsAtEqualMem
		base.MuxHTTPP95Ns = res.HTTPP95.Nanoseconds()
		base.MuxP95Ns = res.MuxP95.Nanoseconds()
		base.MuxP95Ratio = res.P95Ratio
		base.MuxKillLost = res.Lost
		base.MuxReconnects = res.Reconnects
		base.MuxResumes = res.Resumes
		base.MuxReattestations = res.Reattestations
	}
	return nil
}

func runAutoscaleFig(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultAutoscaleConfig()
	cfg.Seed = seed
	if quick {
		cfg.PeakWindow = 500 * time.Millisecond
	}
	res, err := experiments.RunAutoscale(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Autoscale ablation: load ramp %d→%d→%d shards (%d workers at peak,\n",
		cfg.MinShards, cfg.MaxShards, cfg.MinShards, cfg.Workers)
	fmt.Printf("# %v engine service, depth %d + %d TCS per shard, %v cooldown)\n",
		cfg.EngineService, cfg.PipelineDepth, cfg.TCSPerShard, cfg.ScaleCooldown)
	fmt.Printf("%-22s  %-10s  %-10s  %-8s\n", "fleet", "req/s", "shards", "lost")
	fmt.Printf("%-22s  %-10.0f  %-10d  %-8s\n", "static (provisioned)", res.StaticPeakRPS, cfg.MaxShards, "0")
	fmt.Printf("%-22s  %-10.0f  %-10d  %-8d\n", "elastic (autoscaled)", res.ElasticPeakRPS, res.PeakShards, res.Lost)
	fmt.Printf("# ramp 1→%d took %v (%d scale-ups); load off → back to %d shard(s) (%d scale-downs)\n",
		res.PeakShards, res.RampTime.Round(time.Millisecond), res.ScaleUps, res.FinalShards, res.ScaleDowns)
	fmt.Printf("# elastic peak holds %.0f%% of the static line; %d/%d requests lost;\n",
		res.PeakRatio*100, res.Lost, res.Issued)
	fmt.Printf("# EPC invariant on both sides of every handoff: %t\n\n", res.InvariantOK)
	if base != nil {
		base.AutoscalePeakShards = res.PeakShards
		base.AutoscaleFinalShards = res.FinalShards
		base.AutoscaleRampMs = res.RampTime.Milliseconds()
		base.AutoscaleElasticRPS = res.ElasticPeakRPS
		base.AutoscaleStaticRPS = res.StaticPeakRPS
		base.AutoscalePeakRatio = res.PeakRatio
		base.AutoscaleLost = res.Lost
		base.AutoscaleScaleUps = res.ScaleUps
		base.AutoscaleScaleDowns = res.ScaleDowns
		base.AutoscaleInvariantOK = res.InvariantOK
	}
	return nil
}

func runBatchFig(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultBatchConfig()
	cfg.Seed = seed
	if quick {
		cfg.Workers, cfg.Requests = 16, 200
		cfg.PipelineDepth = 32
		cfg.BatchSizes = []int{2, 8}
	}
	res, err := experiments.RunBatch(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Batch ablation: vectorized ecall submission vs unbatched async pipeline\n")
	fmt.Printf("# (%d enclave threads, %v per transition, %d workers x %d requests,\n",
		cfg.TCSCount, cfg.TransitionCost, cfg.Workers, cfg.Requests)
	fmt.Printf("# fill window %v)\n", cfg.BatchWindow)
	fmt.Printf("%-10s  %-10s  %-8s  %-10s  %-10s  %-14s\n",
		"batch max", "req/s", "speedup", "p50", "p95", "occupancy 50/95")
	fmt.Printf("%-10s  %-10.0f  %-8s  %-10v  %-10v  %-14s\n", "off",
		res.UnbatchedRPS, "1.00",
		res.UnbatchedP50.Round(time.Microsecond), res.UnbatchedP95.Round(time.Microsecond), "-")
	for _, pt := range res.Curve {
		fmt.Printf("%-10.0f  %-10.0f  %-8.2f  %-10v  %-10v  %-14s\n",
			pt.BatchMax, pt.RPS, pt.Speedup,
			pt.P50.Round(time.Microsecond), pt.P95.Round(time.Microsecond),
			fmt.Sprintf("%.0f/%.0f", pt.OccupancyP50, pt.OccupancyP95))
	}
	fmt.Printf("# group-commit batching buys %.1fx over the unbatched async hot path;\n", res.BestSpeedup)
	fmt.Printf("# EPC invariant across the sweep: %t\n\n", res.InvariantOK)
	if base != nil {
		base.BatchUnbatchedRPS = res.UnbatchedRPS
		base.BatchUnbatchedP50 = res.UnbatchedP50.Nanoseconds()
		base.BatchBestSpeedup = res.BestSpeedup
		base.BatchInvariantOK = res.InvariantOK
		base.BatchCurve = base.BatchCurve[:0]
		for _, pt := range res.Curve {
			base.BatchCurve = append(base.BatchCurve, batchCurvePoint{
				BatchMax:     int(pt.BatchMax),
				RPS:          pt.RPS,
				Speedup:      pt.Speedup,
				P50Ns:        pt.P50.Nanoseconds(),
				P95Ns:        pt.P95.Nanoseconds(),
				OccupancyP50: pt.OccupancyP50,
				OccupancyP95: pt.OccupancyP95,
			})
		}
	}
	return nil
}

func runAnswerFig(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultAnswerConfig()
	cfg.Seed = seed
	if quick {
		cfg.Workers, cfg.Requests = 8, 160
		cfg.RepeatRatios = []float64{0.25, 0.9}
	}
	res, err := experiments.RunAnswer(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Answer-tier ablation: in-enclave index vs no-index baseline on the\n")
	fmt.Printf("# identical repeat-heavy workload (%d workers x %d requests per run,\n",
		cfg.Workers, cfg.Requests)
	fmt.Printf("# %v engine service, %d B index)\n", cfg.EngineService, cfg.IndexBytes)
	fmt.Printf("%-8s  %-10s  %-20s  %-8s  %-18s  %-18s\n",
		"repeat", "local hit", "upstream base/idx", "cut", "p50 base/idx", "p99 base/idx")
	for _, pt := range res.Curve {
		fmt.Printf("%-8.2f  %-10.2f  %-20s  %-8.2f  %-18s  %-18s\n",
			pt.RepeatRatio, pt.LocalHitRatio,
			fmt.Sprintf("%d/%d", pt.BaselineUpstream, pt.IndexedUpstream),
			pt.UpstreamCut,
			fmt.Sprintf("%v/%v", pt.BaselineP50.Round(time.Microsecond), pt.IndexedP50.Round(time.Microsecond)),
			fmt.Sprintf("%v/%v", pt.BaselineP99.Round(time.Microsecond), pt.IndexedP99.Round(time.Microsecond)))
	}
	fmt.Printf("# the answer tier cuts upstream requests up to %.1fx with zero extra round trips;\n", res.BestUpstreamCut)
	fmt.Printf("# EPC invariant across the sweep: %t\n\n", res.InvariantOK)
	if base != nil {
		base.AnswerBestUpstreamCut = res.BestUpstreamCut
		base.AnswerInvariantOK = res.InvariantOK
		base.AnswerCurve = base.AnswerCurve[:0]
		for _, pt := range res.Curve {
			base.AnswerCurve = append(base.AnswerCurve, answerCurvePoint{
				RepeatRatio:      pt.RepeatRatio,
				LocalHitRatio:    pt.LocalHitRatio,
				BaselineUpstream: pt.BaselineUpstream,
				IndexedUpstream:  pt.IndexedUpstream,
				UpstreamCut:      pt.UpstreamCut,
				BaselineP50Ns:    pt.BaselineP50.Nanoseconds(),
				IndexedP50Ns:     pt.IndexedP50.Nanoseconds(),
				BaselineP99Ns:    pt.BaselineP99.Nanoseconds(),
				IndexedP99Ns:     pt.IndexedP99.Nanoseconds(),
			})
		}
	}
	return nil
}

func runObsFig(quick bool, seed uint64, base *scalingBaseline) error {
	cfg := experiments.DefaultObsConfig()
	cfg.Seed = seed
	if quick {
		cfg.Workers, cfg.Requests, cfg.Repeats = 16, 200, 2
		cfg.PipelineDepth = 32
	}
	res, err := experiments.RunObs(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# Observability ablation: identical async workload, layer off vs on\n")
	fmt.Printf("# (%d workers x %d requests, best of %d, %v engine service)\n",
		cfg.Workers, cfg.Requests, cfg.Repeats, cfg.EngineService)
	fmt.Printf("%-14s  %-10s  %-10s  %-10s\n", "variant", "req/s", "p50", "p95")
	fmt.Printf("%-14s  %-10.0f  %-10v  %-10v\n", "obs off",
		res.BaselineRPS, res.BaselineP50.Round(time.Microsecond), res.BaselineP95.Round(time.Microsecond))
	fmt.Printf("%-14s  %-10.0f  %-10v  %-10v\n", "obs on",
		res.ObsRPS, res.ObsP50.Round(time.Microsecond), res.ObsP95.Round(time.Microsecond))
	fmt.Printf("# overhead %.1f%% (target < 5%%); stages covered: %s; %d events in the ring;\n",
		res.Overhead*100, strings.Join(res.StagesCovered, " → "), res.EventsLogged)
	fmt.Printf("# EPC invariant on both variants: %t\n\n", res.InvariantOK)
	if base != nil {
		base.ObsBaselineRPS = res.BaselineRPS
		base.ObsEnabledRPS = res.ObsRPS
		base.ObsOverhead = res.Overhead
		base.ObsBaselineP50 = res.BaselineP50.Nanoseconds()
		base.ObsEnabledP50 = res.ObsP50.Nanoseconds()
		base.ObsStages = res.StagesCovered
		base.ObsEvents = res.EventsLogged
		base.ObsInvariantOK = res.InvariantOK
	}
	return nil
}

func runAnonBench(f *experiments.Fixture, quick bool) error {
	cfg := experiments.DefaultAnonBenchConfig()
	if quick {
		cfg.Duration = 500 * time.Millisecond
	}
	res, err := experiments.RunAnonBench(f, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Figure.Render())
	fmt.Printf("# knees (last sub-second p50, req/s): Dissent=%.0f RAC=%.0f Tor=%.0f X-Search=%.0f\n",
		res.Knee["Dissent"], res.Knee["RAC"], res.Knee["Tor"], res.Knee["X-Search"])
	fmt.Printf("# paper (§2.1.1 qualitative): Dissent < RAC < Tor << X-Search\n")
	fmt.Printf("# (WAN compressed %gx; ratios, not absolutes, are the claim)\n\n", 1/cfg.Scale)
	return nil
}
