package tor

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	mrand "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"xsearch/internal/netsim"
)

// NetworkConfig parameterizes a simulated Tor network.
type NetworkConfig struct {
	// Relays is the number of onion routers (>= 3 for default circuits).
	Relays int
	// HopMedian is the median one-way inter-hop WAN delay; zero uses
	// netsim.RelayHopMedian.
	HopMedian time.Duration
	// Scale compresses WAN time (see netsim.Link); zero means 1.0.
	Scale float64
	// Seed fixes relay selection and latency draws.
	Seed uint64
	// RelayCellRate caps each relay's cell-processing rate (cells/s),
	// modelling per-relay bandwidth of the 2017 public network. Zero
	// means unlimited (CPU-bound).
	RelayCellRate float64
	// Exit handles requests leaving the network. Nil makes exits echo
	// empty responses (the Figure 5 capacity configuration).
	Exit ExitHandler
}

// Network is a set of running relays plus a directory.
type Network struct {
	relays     []*Relay
	links      []*netsim.Link // per-relay ingress link
	clientLink *netsim.Link   // guard -> client leg
	exit       ExitHandler

	mu       sync.Mutex
	rng      *mrand.Rand
	nextCirc atomic.Uint64
	closed   atomic.Bool
}

// NewNetwork starts the relays.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Relays < 3 {
		return nil, fmt.Errorf("tor: need >= 3 relays, got %d", cfg.Relays)
	}
	if cfg.HopMedian <= 0 {
		cfg.HopMedian = netsim.RelayHopMedian
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	n := &Network{
		exit: cfg.Exit,
		rng:  mrand.New(mrand.NewPCG(cfg.Seed, cfg.Seed^0x94d049bb133111eb)),
	}
	var cellInterval time.Duration
	if cfg.RelayCellRate > 0 {
		cellInterval = time.Duration(float64(time.Second) / cfg.RelayCellRate)
	}
	for i := 0; i < cfg.Relays; i++ {
		r, err := newRelay(i, cellInterval)
		if err != nil {
			n.Close()
			return nil, err
		}
		model, err := netsim.NewLognormal(cfg.HopMedian, netsim.WANSigma, cfg.Seed+uint64(i)+1)
		if err != nil {
			n.Close()
			return nil, err
		}
		n.relays = append(n.relays, r)
		n.links = append(n.links, netsim.NewLink(model, cfg.Scale))
	}
	clientModel, err := netsim.NewLognormal(cfg.HopMedian, netsim.WANSigma, cfg.Seed+uint64(cfg.Relays)+1)
	if err != nil {
		n.Close()
		return nil, err
	}
	n.clientLink = netsim.NewLink(clientModel, cfg.Scale)
	return n, nil
}

// NumRelays returns the directory size.
func (n *Network) NumRelays() int { return len(n.relays) }

// Close stops all relays.
func (n *Network) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	for _, r := range n.relays {
		r.close()
	}
}

// pickRelays selects k distinct relays uniformly (the simplified path
// selection of the simulation).
func (n *Network) pickRelays(k int) ([]int, error) {
	if k > len(n.relays) {
		return nil, ErrNotEnough
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	perm := n.rng.Perm(len(n.relays))
	return perm[:k], nil
}

// Circuit is a client's established onion path.
type Circuit struct {
	network *Network
	id      uint64
	hops    []int
	keys    [][32]byte

	mu      sync.Mutex
	seq     uint64
	pending chan Cell
	reasm   *reassembler
	closed  bool
}

// BuildCircuit performs the per-hop handshakes and installs routing state.
// hops is typically 3 (guard, middle, exit).
func (n *Network) BuildCircuit(hops int) (*Circuit, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if hops < 1 {
		return nil, fmt.Errorf("tor: hops must be >= 1, got %d", hops)
	}
	idxs, err := n.pickRelays(hops)
	if err != nil {
		return nil, err
	}
	id := n.nextCirc.Add(1)
	c := &Circuit{
		network: n,
		id:      id,
		hops:    idxs,
		pending: make(chan Cell, 2048),
		reasm:   newReassembler(0),
	}
	// Handshake with each hop (client pays one ECDH per hop, as in Tor's
	// telescoping build; the extend relaying itself is elided).
	for _, idx := range idxs {
		eph, err := ecdh.P256().GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("tor: client eph: %w", err)
		}
		relayEph, err := n.relays[idx].handshake(id, eph.PublicKey().Bytes())
		if err != nil {
			return nil, err
		}
		relayPub, err := ecdh.P256().NewPublicKey(relayEph)
		if err != nil {
			return nil, err
		}
		s1, err := eph.ECDH(relayPub)
		if err != nil {
			return nil, err
		}
		// Client side of ntor: second ECDH against the relay identity.
		s2, err := eph.ECDH(n.relays[idx].identity.PublicKey())
		if err != nil {
			return nil, err
		}
		key, err := deriveCircuitKey(s1, s2, id)
		if err != nil {
			return nil, err
		}
		c.keys = append(c.keys, key)
	}
	// Install routing: hop i forwards to hop i+1; backward path returns
	// toward the client, terminating in the circuit's pending channel.
	for pos, idx := range idxs {
		relay := n.relays[idx]
		var forward func(Cell)
		var exit ExitHandler
		if pos < len(idxs)-1 {
			next := n.relays[idxs[pos+1]]
			nextLink := n.links[idxs[pos+1]]
			forward = func(cell Cell) { next.submit(nextLink, relayTask{cell: cell}) }
		} else {
			exit = n.exit
			if exit == nil {
				exit = func([]byte) ([]byte, error) { return nil, nil }
			}
		}
		var back func(Cell)
		if pos > 0 {
			prev := n.relays[idxs[pos-1]]
			prevLink := n.links[idxs[pos-1]]
			back = func(cell Cell) { prev.submit(prevLink, relayTask{cell: cell, backward: true}) }
		} else {
			back = func(cell Cell) {
				// The guard -> client leg traverses the WAN too.
				go func() {
					n.clientLink.Wait()
					c.mu.Lock()
					closed := c.closed
					c.mu.Unlock()
					if closed {
						return
					}
					select {
					case c.pending <- cell:
					default: // drop on overflow, like a saturated link
					}
				}()
			}
		}
		if err := relay.configure(id, forward, back, exit); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Fetch sends one request payload through the circuit and waits for the
// complete response. One request may be in flight per circuit, matching
// Tor's stream semantics for a single synchronous query.
func (c *Circuit) Fetch(payload []byte, timeout time.Duration) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	startSeq := c.seq
	cells, err := packMessage(c.id, startSeq, payload)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.seq += uint64(len(cells))
	c.mu.Unlock()

	// Onion-wrap: innermost layer is the exit's; apply in reverse.
	firstIdx := c.hops[0]
	first := c.network.relays[firstIdx]
	firstLink := c.network.links[firstIdx]
	for _, cell := range cells {
		wrapped := cell
		for i := len(c.keys) - 1; i >= 0; i-- {
			if err := cryptCellBody(c.keys[i], dirForward, &wrapped); err != nil {
				return nil, err
			}
		}
		first.submit(firstLink, relayTask{cell: wrapped})
	}

	// Collect the response, unwrapping all layers per cell. Cells may
	// arrive reordered; the reassembler restores sequence order.
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case cell := <-c.pending:
			for i := 0; i < len(c.keys); i++ {
				if err := cryptCellBody(c.keys[i], dirBackward, &cell); err != nil {
					return nil, err
				}
			}
			resp, complete := c.reasm.Add(cell)
			if !complete {
				continue
			}
			if len(resp) == 1 && resp[0] == 0 {
				resp = nil // empty-message placeholder
			}
			return resp, nil
		case <-deadline.C:
			return nil, fmt.Errorf("tor: fetch timed out after %v", timeout)
		}
	}
}

// Close tears the circuit down on all hops.
func (c *Circuit) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, idx := range c.hops {
		c.network.relays[idx].teardown(c.id)
	}
}
