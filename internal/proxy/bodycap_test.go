package proxy

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"
)

// TestHandlersRejectOversizeBodies is the request-body-cap regression
// test: a client POSTing more than maxBodyBytes to the client-facing
// endpoints must get a clean 4xx, not balloon host memory or hang. A
// normally-sized request on the same server must still work.
func TestHandlersRejectOversizeBodies(t *testing.T) {
	p, err := New(Config{K: 1, EchoMode: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = p.Shutdown(ctx)
	}()

	oversize := bytes.Repeat([]byte("A"), maxBodyBytes+1024)
	for _, path := range []string{"/handshake", "/secure"} {
		resp, err := http.Post(p.URL()+path, "application/json", bytes.NewReader(oversize))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Fatalf("POST %s with %d-byte body: status %d, want 4xx", path, len(oversize), resp.StatusCode)
		}
	}
	// The cap must not break legitimate traffic.
	resp, err := http.Get(p.URL() + "/search?q=still+works")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("normal search after cap rejections: status %d", resp.StatusCode)
	}
}
