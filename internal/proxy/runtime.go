package proxy

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"xsearch/internal/netsim"
)

// sha256Sum is the hash primitive available to trusted code.
func sha256Sum(data []byte) [32]byte { return sha256.Sum256(data) }

// connTable is the untrusted runtime's socket table backing the
// sock_connect/send/recv/close ocalls. Descriptors are opaque handles the
// enclave cannot dereference.
type connTable struct {
	mu     sync.Mutex
	nextFD int64
	conns  map[int64]net.Conn
	// DialTimeout bounds connection establishment.
	dialTimeout time.Duration
	// link, when set, injects WAN delay on the proxy <-> engine path
	// (one traversal on connect, one per request write, one per
	// response's first read).
	link *netsim.Link
}

func newConnTable(link *netsim.Link) *connTable {
	return &connTable{
		conns:       make(map[int64]net.Conn),
		dialTimeout: 10 * time.Second,
		link:        link,
	}
}

// delayedConn injects link latency around a request/response exchange.
type delayedConn struct {
	net.Conn
	link *netsim.Link

	mu          sync.Mutex
	pendingRead bool
}

func (d *delayedConn) Write(p []byte) (int, error) {
	d.link.Wait()
	d.mu.Lock()
	d.pendingRead = true
	d.mu.Unlock()
	return d.Conn.Write(p)
}

func (d *delayedConn) Read(p []byte) (int, error) {
	d.mu.Lock()
	pending := d.pendingRead
	d.pendingRead = false
	d.mu.Unlock()
	if pending {
		d.link.Wait()
	}
	return d.Conn.Read(p)
}

// register installs the socket ocall handlers on the enclave: the paper's
// four (sock_connect/send/recv/close) plus sock_check, the liveness probe
// backing the enclave's connection pool.
func (ct *connTable) handlers() map[string]func([]byte) ([]byte, error) {
	return map[string]func([]byte) ([]byte, error){
		"sock_connect": ct.ocallConnect,
		"send":         ct.ocallSend,
		"recv":         ct.ocallRecv,
		"close":        ct.ocallClose,
		"sock_check":   ct.ocallCheck,
	}
}

func (ct *connTable) ocallConnect(arg []byte) ([]byte, error) {
	var req connectArg
	if err := json.Unmarshal(arg, &req); err != nil {
		return nil, fmt.Errorf("proxy: connect arg: %w", err)
	}
	addr := net.JoinHostPort(req.Host, fmt.Sprintf("%d", req.Port))
	if ct.link != nil {
		ct.link.Wait() // connection establishment traverses the WAN
	}
	conn, err := net.DialTimeout("tcp", addr, ct.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("proxy: dial %s: %w", addr, err)
	}
	if ct.link != nil {
		conn = &delayedConn{Conn: conn, link: ct.link}
	}
	ct.mu.Lock()
	ct.nextFD++
	fd := ct.nextFD
	ct.conns[fd] = conn
	ct.mu.Unlock()
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(fd))
	return out, nil
}

func (ct *connTable) lookup(fd int64) (net.Conn, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	conn, ok := ct.conns[fd]
	if !ok {
		return nil, fmt.Errorf("proxy: unknown fd %d", fd)
	}
	return conn, nil
}

func (ct *connTable) ocallSend(arg []byte) ([]byte, error) {
	if len(arg) < 8 {
		return nil, fmt.Errorf("proxy: send arg too short")
	}
	fd := int64(binary.LittleEndian.Uint64(arg))
	conn, err := ct.lookup(fd)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(arg[8:]); err != nil {
		return nil, fmt.Errorf("proxy: write fd %d: %w", fd, err)
	}
	return nil, nil
}

func (ct *connTable) ocallRecv(arg []byte) ([]byte, error) {
	if len(arg) < 16 {
		return nil, fmt.Errorf("proxy: recv arg too short")
	}
	fd := int64(binary.LittleEndian.Uint64(arg))
	max := int(binary.LittleEndian.Uint64(arg[8:]))
	if max <= 0 || max > 1<<20 {
		max = 16 * 1024
	}
	conn, err := ct.lookup(fd)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, max+1)
	n, err := conn.Read(buf[1:])
	switch {
	case err == io.EOF:
		buf[0] = 1 // EOF marker
		return buf[:1+n], nil
	case err != nil:
		return nil, fmt.Errorf("proxy: read fd %d: %w", fd, err)
	default:
		buf[0] = 0
		return buf[:1+n], nil
	}
}

func (ct *connTable) ocallClose(arg []byte) ([]byte, error) {
	if len(arg) < 8 {
		return nil, fmt.Errorf("proxy: close arg too short")
	}
	fd := int64(binary.LittleEndian.Uint64(arg))
	ct.mu.Lock()
	conn, ok := ct.conns[fd]
	delete(ct.conns, fd)
	ct.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("proxy: unknown fd %d", fd)
	}
	if err := conn.Close(); err != nil {
		return nil, fmt.Errorf("proxy: close fd %d: %w", fd, err)
	}
	return nil, nil
}

// ocallCheck reports whether a pooled socket is still usable: open, with
// no unread bytes waiting (data between requests means the previous HTTP
// exchange left the stream desynced, or the server sent an early close).
// Returns one byte: 1 = alive, 0 = dead. Never an error — the enclave
// treats any failure as "dead" anyway.
func (ct *connTable) ocallCheck(arg []byte) ([]byte, error) {
	if len(arg) < 8 {
		return nil, fmt.Errorf("proxy: check arg too short")
	}
	fd := int64(binary.LittleEndian.Uint64(arg))
	conn, err := ct.lookup(fd)
	if err != nil {
		return []byte{0}, nil
	}
	if probeConn(conn) {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

// probeConn checks socket liveness. The platform fast path (peekProbe,
// unix only) peeks the kernel buffer without consuming stream bytes:
// open-and-quiet means alive; EOF or buffered bytes (framing desync) mean
// dead. Elsewhere — and for wrappers without syscall access — it falls
// back to a 1-byte read under a short deadline; that read may consume a
// byte, which is safe only because a "dead" verdict closes the connection.
func probeConn(conn net.Conn) bool {
	raw := conn
	if d, ok := raw.(*delayedConn); ok {
		raw = d.Conn
	}
	if alive, handled := peekProbe(raw); handled {
		return alive
	}
	if err := conn.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
		return false
	}
	defer func() { _ = conn.SetReadDeadline(time.Time{}) }()
	var buf [1]byte
	n, err := conn.Read(buf[:])
	if n > 0 {
		return false
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// closeAll reaps any connections the enclave leaked.
func (ct *connTable) closeAll() {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for fd, conn := range ct.conns {
		_ = conn.Close()
		delete(ct.conns, fd)
	}
}
