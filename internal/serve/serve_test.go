package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newTestServer() *Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "pong")
	})
	return Wrap(&http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second})
}

func TestStartServesAndDoubleStartFails(t *testing.T) {
	s := newTestServer()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	resp, err := http.Get("http://" + s.Addr() + "/ping")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q, want pong", body)
	}
	if err := s.Start("127.0.0.1:0"); !errors.Is(err, ErrAlreadyStarted) {
		t.Fatalf("second Start = %v, want ErrAlreadyStarted", err)
	}
}

// TestFatalServeErrorSurfaces kills the listener out from under the accept
// loop and requires the failure to land on Err() — the bug this package
// fixes is that pattern `go srv.Serve(ln)` silently discarding it.
func TestFatalServeErrorSurfaces(t *testing.T) {
	s := newTestServer()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	_ = ln.Close()
	select {
	case err := <-s.Err():
		if err == nil || !strings.Contains(err.Error(), "use of closed") {
			t.Fatalf("Err() delivered %v, want closed-listener error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fatal serve error never surfaced on Err()")
	}
}

// TestShutdownReapsNeverUsedConns is the regression test for the chaos-soak
// shutdown-deadline overrun: a connection that was dialed but never carried
// a request (an HTTP transport's spare) must not stall Shutdown for
// net/http's 5-second StateNew grace.
func TestShutdownReapsNeverUsedConns(t *testing.T) {
	s := newTestServer()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// A spare conn: dialed, zero bytes written — server-side StateNew.
	spare, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = spare.Close() }()
	// Let the accept + ConnState(StateNew) land before Shutdown snapshots.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.fresh)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("spare conn never reached StateNew")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with a never-used conn: %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("Shutdown took %v; the spare conn should be reaped immediately", d)
	}
	// The reap must have actually closed it.
	_ = spare.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := spare.Read(make([]byte, 1)); err == nil {
		t.Fatal("spare conn still open after Shutdown")
	}
}
