package answer

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"xsearch/internal/core"
)

// meter is a test EPC stand-in: charge/free move a balance the way
// env.Alloc/env.Free move the enclave heap, with an optional hard limit.
type meter struct {
	mu    sync.Mutex
	used  int64
	limit int64
}

func (m *meter) charge(n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.limit > 0 && m.used+n > m.limit {
		return fmt.Errorf("meter: over limit")
	}
	m.used += n
	return nil
}

func (m *meter) free(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.used -= n
}

func (m *meter) balance() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

func rdoc(url, title, snippet string) core.Result {
	return core.Result{URL: url, Title: title, Snippet: snippet}
}

func requireBalanced(t *testing.T, step string, x *Index, m *meter) {
	t.Helper()
	if got, want := m.balance(), x.Bytes(); got != want {
		t.Fatalf("%s: meter %d != index bytes %d", step, got, want)
	}
}

func TestIndexInsertAndQuery(t *testing.T) {
	x, err := New(1<<20, time.Minute, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := &meter{}
	now := time.Now()
	docs := []core.Result{
		rdoc("http://a", "chicken recipe oven", "roast chicken recipes with herbs and lemon"),
		rdoc("http://b", "chicken soup", "slow cooked chicken soup with noodles"),
		rdoc("http://c", "bicycle repair", "fixing a flat tire on a road bicycle"),
	}
	if n := x.Insert(docs, now, m.charge, m.free); n != 3 {
		t.Fatalf("Insert stored %d, want 3", n)
	}
	requireBalanced(t, "after insert", x, m)

	// Exact-vocabulary repeat hits, ranked with the chicken docs first.
	res, ok := x.Query("chicken recipe", 10, now, m.free)
	if !ok || len(res) == 0 {
		t.Fatalf("Query miss on repeat vocabulary (ok=%t, %d results)", ok, len(res))
	}
	if res[0].URL != "http://a" {
		t.Fatalf("top result %q, want the recipe doc", res[0].URL)
	}

	// A rephrased near-repeat (different word order, new inflection)
	// still hits: the normalization pipeline stems both sides.
	if _, ok := x.Query("oven chicken recipes", 10, now, m.free); !ok {
		t.Fatal("rephrased query missed")
	}

	// Unrelated vocabulary falls through.
	if _, ok := x.Query("quantum chromodynamics", 10, now, m.free); ok {
		t.Fatal("unrelated query hit the index")
	}
	requireBalanced(t, "after queries", x, m)
}

func TestIndexConfidenceFloor(t *testing.T) {
	// A high score floor rejects weak matches even when terms overlap.
	x, err := New(1<<20, time.Minute, 100)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := &meter{}
	now := time.Now()
	x.Insert([]core.Result{
		rdoc("http://a", "chicken recipe", "roast chicken"),
		rdoc("http://b", "chicken soup", "chicken noodles"),
	}, now, m.charge, m.free)
	if _, ok := x.Query("chicken", 10, now, m.free); ok {
		t.Fatal("query beat an unreachable score floor")
	}

	// Fewer than minMatchingDocs matching documents is a miss even with
	// a trivially low floor.
	y, err := New(1<<20, time.Minute, 1e-9)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	y.Insert([]core.Result{
		rdoc("http://a", "chicken recipe", "roast chicken"),
		rdoc("http://b", "bicycle repair", "flat tire"),
	}, now, m.charge, m.free)
	if _, ok := y.Query("chicken", 10, now, m.free); ok {
		t.Fatalf("query answered from %d matching doc(s), floor is %d", 1, minMatchingDocs)
	}
}

func TestIndexQuantizedCharges(t *testing.T) {
	x, err := New(1<<20, time.Minute, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var charges []int64
	charge := func(n int64) error { charges = append(charges, n); return nil }
	now := time.Now()
	x.Insert([]core.Result{
		rdoc("http://a", "x", "tiny"),
		rdoc("http://b", "substantially longer title text here", "and a much longer snippet body with many distinct informative terms scattered throughout the text"),
	}, now, charge, nil)
	if len(charges) == 0 {
		t.Fatal("no charges recorded")
	}
	for i, c := range charges {
		if c%arenaQuantum != 0 {
			t.Fatalf("charge %d = %d is not arena-quantized (quantum %d)", i, c, arenaQuantum)
		}
	}
	for _, r := range []core.Result{rdoc("http://a", "x", "tiny")} {
		if s := DocSize(r); s%arenaQuantum != 0 {
			t.Fatalf("DocSize %d not quantized", s)
		}
	}
}

func TestIndexEvictionAndTTL(t *testing.T) {
	x, err := New(3*arenaQuantum, time.Minute, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := &meter{}
	now := time.Now()
	for i := 0; i < 10; i++ {
		x.Insert([]core.Result{
			rdoc(fmt.Sprintf("http://d%d", i), "chicken recipe", fmt.Sprintf("roast chicken variant %d", i)),
		}, now.Add(time.Duration(i)*time.Millisecond), m.charge, m.free)
		requireBalanced(t, fmt.Sprintf("insert %d", i), x, m)
		if x.Bytes() > x.MaxBytes() {
			t.Fatalf("insert %d: bytes %d over bound %d", i, x.Bytes(), x.MaxBytes())
		}
	}
	if x.Docs() == 0 || x.Docs() >= 10 {
		t.Fatalf("FIFO eviction kept %d docs", x.Docs())
	}

	// Replacing a live URL frees the old charge exactly once.
	last := fmt.Sprintf("http://d%d", 9)
	x.Insert([]core.Result{rdoc(last, "chicken recipe updated", "an updated roast chicken snippet")},
		now.Add(20*time.Millisecond), m.charge, m.free)
	requireBalanced(t, "after replace", x, m)

	// Everything expires; the purge releases every byte.
	x.PurgeExpired(now.Add(time.Hour), m.free)
	if x.Docs() != 0 || x.Bytes() != 0 {
		t.Fatalf("after TTL purge: %d docs, %d bytes", x.Docs(), x.Bytes())
	}
	requireBalanced(t, "after purge", x, m)
	if m.balance() != 0 {
		t.Fatalf("meter left at %d after full purge", m.balance())
	}
}

func TestIndexChargeFailureSkipsDoc(t *testing.T) {
	x, err := New(1<<20, time.Minute, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := &meter{limit: arenaQuantum} // one small doc fits, the second charge fails
	now := time.Now()
	n := x.Insert([]core.Result{
		rdoc("http://a", "alpha", "small"),
		rdoc("http://b", "beta", "small too"),
	}, now, m.charge, m.free)
	if n != 1 {
		t.Fatalf("stored %d docs against a one-arena meter, want 1", n)
	}
	requireBalanced(t, "after failed charge", x, m)
}

func TestIndexSnapshotMerge(t *testing.T) {
	now := time.Now()
	src, err := New(1<<20, time.Minute, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sm := &meter{}
	src.Insert([]core.Result{
		rdoc("http://a", "chicken recipe oven", "roast chicken recipes with herbs"),
		rdoc("http://b", "bicycle repair", "fixing a flat tire"),
	}, now, sm.charge, sm.free)

	blob, err := src.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	dst, err := New(1<<20, time.Minute, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dm := &meter{}
	// The destination already holds one of the URLs; merge must not
	// duplicate it.
	dst.Insert([]core.Result{rdoc("http://a", "chicken recipe oven", "a fresher local copy")},
		now, dm.charge, dm.free)
	added, bytes, err := dst.Merge(blob, now, dm.charge, dm.free)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if added != 1 {
		t.Fatalf("Merge added %d docs, want 1 (dedup by URL)", added)
	}
	if bytes <= 0 {
		t.Fatalf("Merge reported %d bytes", bytes)
	}
	requireBalanced(t, "after merge", dst, dm)
	// The query spans both docs' vocabulary so the matching-docs floor
	// holds; the merged doc must be retrievable.
	res, ok := dst.Query("bicycle tire chicken recipe", 10, now, dm.free)
	if !ok {
		t.Fatal("merged document not queryable")
	}
	found := false
	for _, r := range res {
		if r.URL == "http://b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged doc missing from results: %+v", res)
	}

	// Expired snapshot docs are dropped on merge.
	late, err := New(1<<20, time.Minute, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lm := &meter{}
	added, _, err = late.Merge(blob, now.Add(time.Hour), lm.charge, lm.free)
	if err != nil || added != 0 {
		t.Fatalf("stale merge added %d docs (err %v), want 0", added, err)
	}

	// A corrupt blob errors without touching the meter.
	if _, _, err := dst.Merge([]byte("not json"), now, dm.charge, dm.free); err == nil {
		t.Fatal("corrupt snapshot merged")
	}
	requireBalanced(t, "after corrupt merge", dst, dm)
}

// TestIndexChurnRace hammers one index from concurrent inserters,
// queriers, and expirers (run under -race): byte accounting must stay
// exact against the shared meter at every quiescent point, and the byte
// bound must never be breached.
func TestIndexChurnRace(t *testing.T) {
	x, err := New(64*arenaQuantum, 5*time.Millisecond, 1e-9)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := &meter{}
	stop := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				x.Insert([]core.Result{
					rdoc(fmt.Sprintf("http://w%d/%d", w, i%50),
						fmt.Sprintf("chicken recipe %d", i%7),
						fmt.Sprintf("roast chicken worker %d iteration %d", w, i)),
				}, time.Now(), m.charge, m.free)
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				x.Query("chicken recipe roast", 5, time.Now(), m.free)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			x.PurgeExpired(time.Now(), m.free)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	requireBalanced(t, "after churn", x, m)
	if x.Bytes() > x.MaxBytes() {
		t.Fatalf("byte bound breached: %d > %d", x.Bytes(), x.MaxBytes())
	}
	x.PurgeExpired(time.Now().Add(time.Hour), m.free)
	if m.balance() != 0 {
		t.Fatalf("meter left at %d after draining the index", m.balance())
	}
}

func TestIndexConfigValidation(t *testing.T) {
	if _, err := New(0, time.Minute, 0); err == nil {
		t.Fatal("zero maxBytes accepted")
	}
	if _, err := New(1024, 0, 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
	x, err := New(1024, time.Minute, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if x.MinScore() != DefaultMinScore {
		t.Fatalf("default min score %g, want %g", x.MinScore(), DefaultMinScore)
	}
}
