package searchengine

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Server exposes an Engine over HTTP with a Bing-like interface:
//
//	GET /search?q=<query>&count=<n>
//
// responding with a JSON array of results. The client's remote address is
// the "source" identity the curious engine records — exactly the linkage
// X-Search's proxy hides.
type Server struct {
	engine *Engine
	http   *http.Server
	ln     net.Listener
	// Delay is an optional artificial processing delay injected per
	// request, used by the end-to-end latency experiment to model a real
	// engine's server-side time.
	Delay time.Duration
	// DelayFn, when set, supersedes Delay with a sampled per-request
	// delay (e.g. a lognormal model of engine processing time).
	DelayFn func() time.Duration
}

// NewServer wraps engine in an HTTP server; call Start to begin serving.
func NewServer(engine *Engine) *Server {
	s := &Server{engine: engine}
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Start listens on addr ("127.0.0.1:0" picks a free port) and serves in a
// background goroutine until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("searchengine: listen %s: %w", addr, err)
	}
	s.ln = ln
	go func() {
		// http.ErrServerClosed is the normal shutdown signal.
		_ = s.http.Serve(ln)
	}()
	return nil
}

// Addr returns the bound address, valid after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown stops the server gracefully.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	count := 20
	if c := r.URL.Query().Get("count"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n <= 0 || n > 100 {
			http.Error(w, "invalid count", http.StatusBadRequest)
			return
		}
		count = n
	}
	switch {
	case s.DelayFn != nil:
		if d := s.DelayFn(); d > 0 {
			time.Sleep(d)
		}
	case s.Delay > 0:
		time.Sleep(s.Delay)
	}
	source := r.RemoteAddr
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		source = host
	}
	results, err := s.engine.Search(source, q, count)
	if err != nil {
		if err == ErrRateLimited {
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(results); err != nil {
		// Connection-level failure; nothing more to do.
		return
	}
}

// Client is a minimal search client for the HTTP API.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a client for the engine at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// Search issues a query and decodes the result list.
func (c *Client) Search(ctx context.Context, query string, count int) ([]Result, error) {
	u := fmt.Sprintf("%s/search?q=%s&count=%d", c.BaseURL, urlQueryEscape(query), count)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("searchengine: build request: %w", err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("searchengine: do request: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("searchengine: status %d", resp.StatusCode)
	}
	var results []Result
	if err := json.NewDecoder(resp.Body).Decode(&results); err != nil {
		return nil, fmt.Errorf("searchengine: decode: %w", err)
	}
	return results, nil
}

// urlQueryEscape escapes a query string for use in a URL query component.
func urlQueryEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r == ' ':
			b.WriteByte('+')
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == '~':
			b.WriteRune(r)
		default:
			for _, by := range []byte(string(r)) {
				fmt.Fprintf(&b, "%%%02X", by)
			}
		}
	}
	return b.String()
}
