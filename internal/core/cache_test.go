package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cacheT0 is an arbitrary fixed wall-clock origin: the cache only compares
// instants it was handed, so tests drive time explicitly.
var cacheT0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func mustCache(t *testing.T, maxBytes int64, ttl time.Duration) *ResultCache {
	t.Helper()
	c, err := NewResultCache(maxBytes, ttl)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cacheResults(n int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = Result{
			URL:     fmt.Sprintf("http://site%d.example/page", i),
			Title:   "result title",
			Snippet: "snippet text for the result",
		}
	}
	return out
}

// epcMirror plays the enclave heap's role: it tallies the charge/free
// callbacks so tests can assert the EPC contract.
type epcMirror struct {
	charged, freed int64
	failCharge     bool
}

func (m *epcMirror) charge(n int64) error {
	if m.failCharge {
		return fmt.Errorf("epc exhausted")
	}
	m.charged += n
	return nil
}
func (m *epcMirror) free(n int64) { m.freed += n }

func TestNewResultCacheValidation(t *testing.T) {
	if _, err := NewResultCache(0, time.Minute); err == nil {
		t.Error("zero maxBytes accepted")
	}
	if _, err := NewResultCache(-1, time.Minute); err == nil {
		t.Error("negative maxBytes accepted")
	}
	if _, err := NewResultCache(1024, 0); err == nil {
		t.Error("zero ttl accepted")
	}
	if _, err := NewResultCache(1024, -time.Second); err == nil {
		t.Error("negative ttl accepted")
	}
}

func TestCachePutGet(t *testing.T) {
	c := mustCache(t, 1<<20, time.Minute)
	m := &epcMirror{}
	results := cacheResults(3)
	if !c.Put("q", results, cacheT0, m.charge, m.free) {
		t.Fatal("Put rejected a fitting entry")
	}
	want := EntrySize("q", results)
	if m.charged != want || m.freed != 0 {
		t.Fatalf("mirror = charged %d / freed %d, want %d / 0", m.charged, m.freed, want)
	}
	if c.Len() != 1 || c.Bytes() != want {
		t.Errorf("Len/Bytes = %d/%d", c.Len(), c.Bytes())
	}
	got, ok := c.Get("q", cacheT0.Add(time.Second), m.free)
	if !ok || len(got) != 3 {
		t.Fatalf("Get = (%d results, %t)", len(got), ok)
	}
	if _, ok := c.Get("absent", cacheT0, m.free); ok {
		t.Error("absent key hit")
	}
	if m.freed != 0 {
		t.Errorf("fresh lookups freed %d bytes", m.freed)
	}
}

// Returned slices are copies: a caller mutating its view must not corrupt
// the cached entry other requests will receive.
func TestCacheGetReturnsCopy(t *testing.T) {
	c := mustCache(t, 1<<20, time.Minute)
	c.Put("q", cacheResults(2), cacheT0, nil, nil)
	got, _ := c.Get("q", cacheT0, nil)
	got[0].URL = "mutated"
	again, _ := c.Get("q", cacheT0, nil)
	if again[0].URL == "mutated" {
		t.Error("cached entry shares memory with a caller's slice")
	}
}

func TestCachePutReplacesAndFrees(t *testing.T) {
	c := mustCache(t, 1<<20, time.Minute)
	m := &epcMirror{}
	small := cacheResults(1)
	big := cacheResults(5)
	c.Put("q", small, cacheT0, m.charge, m.free)
	oldCharged := m.charged
	c.Put("q", big, cacheT0.Add(time.Second), m.charge, m.free)
	if m.freed != oldCharged {
		t.Errorf("replacement freed %d, want the old entry's %d", m.freed, oldCharged)
	}
	if c.Len() != 1 || c.Bytes() != m.charged-m.freed {
		t.Errorf("Len/Bytes = %d/%d, want 1/%d", c.Len(), c.Bytes(), m.charged-m.freed)
	}
}

// A failed charge (EPC exhausted) must leave the cache exactly as if the
// Put never happened: no entry, no stranded bytes.
func TestCachePutChargeFailure(t *testing.T) {
	c := mustCache(t, 1<<20, time.Minute)
	m := &epcMirror{failCharge: true}
	if c.Put("q", cacheResults(2), cacheT0, m.charge, m.free) {
		t.Fatal("Put stored an entry whose charge failed")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("failed charge left Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	if _, ok := c.Get("q", cacheT0, nil); ok {
		t.Error("uncharged entry served")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := mustCache(t, 1<<20, time.Minute)
	m := &epcMirror{}
	c.Put("q", cacheResults(2), cacheT0, m.charge, m.free)
	if _, ok := c.Get("q", cacheT0.Add(59*time.Second), m.free); !ok {
		t.Fatal("fresh entry missed")
	}
	got, ok := c.Get("q", cacheT0.Add(61*time.Second), m.free)
	if ok || got != nil {
		t.Fatal("expired entry served")
	}
	if m.freed != m.charged {
		t.Errorf("expiry freed %d, want %d", m.freed, m.charged)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("expired entry lingers: Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
}

// Byte-bound overflow evicts strictly oldest-first (FIFO insertion order).
func TestCacheFIFOEviction(t *testing.T) {
	entry := EntrySize("q0", cacheResults(2))
	c := mustCache(t, 2*entry+entry/2, time.Minute) // room for two entries
	m := &epcMirror{}
	for i := 0; i < 3; i++ {
		if !c.Put(fmt.Sprintf("q%d", i), cacheResults(2), cacheT0.Add(time.Duration(i)), m.charge, m.free) {
			t.Fatalf("entry %d rejected", i)
		}
		if i < 2 && m.freed != 0 {
			t.Fatalf("entry %d freed %d before overflow", i, m.freed)
		}
	}
	if m.freed != entry {
		t.Fatalf("overflow freed %d, want %d", m.freed, entry)
	}
	if _, ok := c.Get("q0", cacheT0, nil); ok {
		t.Error("oldest entry survived FIFO eviction")
	}
	for _, k := range []string{"q1", "q2"} {
		if _, ok := c.Get(k, cacheT0, nil); !ok {
			t.Errorf("entry %s wrongly evicted", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheOversizeEntryRejected(t *testing.T) {
	c := mustCache(t, 128, time.Minute)
	m := &epcMirror{}
	if c.Put("q", cacheResults(50), cacheT0, m.charge, m.free) {
		t.Error("oversize entry stored")
	}
	if m.charged != 0 || c.Len() != 0 {
		t.Errorf("oversize entry charged %d, len %d", m.charged, c.Len())
	}
}

func TestCacheRemove(t *testing.T) {
	c := mustCache(t, 1<<20, time.Minute)
	m := &epcMirror{}
	c.Put("q", cacheResults(2), cacheT0, m.charge, m.free)
	if !c.Remove("q", m.free) {
		t.Error("Remove missed a present entry")
	}
	if m.freed != m.charged {
		t.Errorf("Remove freed %d, want %d", m.freed, m.charged)
	}
	if c.Remove("q", m.free) {
		t.Error("second Remove reported an entry")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("Len/Bytes = %d/%d after remove", c.Len(), c.Bytes())
	}
}

// The EPC contract the proxy relies on: across arbitrary insert/replace/
// evict/expire churn, charged and freed bytes balance the live footprint
// exactly — and once everything is gone, total charged == total freed.
func TestCacheAllocFreeSymmetry(t *testing.T) {
	entry := EntrySize("key-00", cacheResults(2))
	c := mustCache(t, 3*entry, 10*time.Second)
	m := &epcMirror{}
	now := cacheT0
	for i := 0; i < 200; i++ {
		now = now.Add(500 * time.Millisecond) // entries expire mid-run
		key := fmt.Sprintf("key-%02d", i%7)   // replacements and evictions
		switch i % 5 {
		case 3:
			c.Get(key, now, m.free)
		case 4:
			c.Remove(key, m.free)
		default:
			c.Put(key, cacheResults(1+i%4), now, m.charge, m.free)
		}
		if got := m.charged - m.freed; got != c.Bytes() {
			t.Fatalf("step %d: charged-freed = %d, live bytes = %d", i, got, c.Bytes())
		}
	}
	c.PurgeExpired(now.Add(time.Hour), m.free)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("purge left Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	if m.charged != m.freed {
		t.Errorf("total charged %d != total freed %d after full churn", m.charged, m.freed)
	}
	if m.charged == 0 {
		t.Error("test exercised nothing")
	}
}

// Same symmetry under concurrency: the callbacks run under the cache
// lock, so atomic tallies must balance the final footprint exactly (run
// with -race). This is the regression test for the charge/mutation
// atomicity the proxy's heap==history+cache invariant depends on.
func TestCacheConcurrentChurn(t *testing.T) {
	c := mustCache(t, 8<<10, time.Minute)
	var charged, freed atomic.Int64
	chargeFn := func(n int64) error { charged.Add(n); return nil }
	freeFn := func(n int64) { freed.Add(n) }
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", (w+i)%13)
				switch i % 3 {
				case 0:
					c.Get(key, cacheT0, freeFn)
				case 1:
					c.Remove(key, freeFn)
				default:
					c.Put(key, cacheResults(i%3), cacheT0, chargeFn, freeFn)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := charged.Load() - freed.Load(); got != c.Bytes() {
		t.Errorf("charged-freed = %d, live bytes = %d", got, c.Bytes())
	}
	if c.Bytes() > c.MaxBytes() {
		t.Errorf("cache exceeded its bound: %d > %d", c.Bytes(), c.MaxBytes())
	}
}
