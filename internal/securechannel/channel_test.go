package securechannel

import (
	"bytes"
	"encoding/hex"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// RFC 5869 test vector A.1 (SHA-256).
func TestHKDFVectorA1(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt, _ := hex.DecodeString("000102030405060708090a0b0c")
	info, _ := hex.DecodeString("f0f1f2f3f4f5f6f7f8f9")
	wantPRK, _ := hex.DecodeString("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM, _ := hex.DecodeString("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := hkdfExtract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Errorf("PRK = %x", prk)
	}
	okm, err := hkdfExpand(prk, info, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("OKM = %x", okm)
	}
}

// RFC 5869 test vector A.3 (zero-length salt and info).
func TestHKDFVectorA3(t *testing.T) {
	ikm, _ := hex.DecodeString("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM, _ := hex.DecodeString("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	okm, err := DeriveKey(ikm, nil, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(okm, wantOKM) {
		t.Errorf("OKM = %x", okm)
	}
}

func TestHKDFExpandTooLong(t *testing.T) {
	if _, err := hkdfExpand(make([]byte, 32), nil, 256*32+1); err == nil {
		t.Error("expected length error")
	}
}

func established(t *testing.T) (client, server *Channel) {
	t.Helper()
	ch, err := NewHandshake(RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewHandshake(RoleServer)
	if err != nil {
		t.Fatal(err)
	}
	client, err = ch.Complete(sh.Offer())
	if err != nil {
		t.Fatal(err)
	}
	server, err = sh.Complete(ch.Offer())
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestChannelRoundTrip(t *testing.T) {
	client, server := established(t)
	msg := []byte("private web search query")
	rec, err := client.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := server.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Errorf("got %q", pt)
	}
	// And the reverse direction.
	rec2, err := server.Seal([]byte("results"))
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := client.Open(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt2) != "results" {
		t.Errorf("got %q", pt2)
	}
}

func TestChannelDirectionsIndependent(t *testing.T) {
	client, server := established(t)
	rec, err := client.Seal([]byte("to server"))
	if err != nil {
		t.Fatal(err)
	}
	// The client cannot open its own record (different direction keys).
	if _, err := client.Open(rec); err == nil {
		t.Error("client opened its own record")
	}
	if _, err := server.Open(rec); err != nil {
		t.Errorf("server failed to open: %v", err)
	}
}

func TestChannelReplayRejected(t *testing.T) {
	client, server := established(t)
	rec, err := client.Seal([]byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec); !errors.Is(err, ErrReplay) {
		t.Errorf("replay err = %v", err)
	}
}

func TestChannelReorderRejected(t *testing.T) {
	client, server := established(t)
	rec1, err := client.Seal([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := client.Seal([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec2); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(rec1); !errors.Is(err, ErrReplay) {
		t.Errorf("reorder err = %v", err)
	}
}

func TestChannelTamperRejected(t *testing.T) {
	client, server := established(t)
	rec, err := client.Seal([]byte("query"))
	if err != nil {
		t.Fatal(err)
	}
	rec[len(rec)-1] ^= 0x01
	if _, err := server.Open(rec); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tamper err = %v", err)
	}
	if _, err := server.Open([]byte("abc")); !errors.Is(err, ErrShortRecord) {
		t.Errorf("short err = %v", err)
	}
}

func TestSameRoleRejected(t *testing.T) {
	a, err := NewHandshake(RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHandshake(RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete(b.Offer()); !errors.Is(err, ErrRole) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewHandshake(Role(9)); err == nil {
		t.Error("bad role accepted")
	}
}

func TestMITMDifferentKeyFails(t *testing.T) {
	// A man in the middle who substitutes its own key produces a channel
	// whose records the honest server cannot open.
	ch, err := NewHandshake(RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewHandshake(RoleServer)
	if err != nil {
		t.Fatal(err)
	}
	mitm, err := NewHandshake(RoleServer)
	if err != nil {
		t.Fatal(err)
	}
	// Client completes against the MITM's offer.
	clientChan, err := ch.Complete(mitm.Offer())
	if err != nil {
		t.Fatal(err)
	}
	// Honest server completes against the client's offer.
	serverChan, err := sh.Complete(ch.Offer())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := clientChan.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serverChan.Open(rec); err == nil {
		t.Error("server opened record keyed to MITM — ECDH broken")
	}
}

func TestOfferMarshalRoundTrip(t *testing.T) {
	h, err := NewHandshake(RoleServer)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := h.Offer().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalOffer(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Role != RoleServer || !bytes.Equal(back.PubKey, h.PublicKeyBytes()) {
		t.Error("round trip mismatch")
	}
	if _, err := UnmarshalOffer([]byte("{")); err == nil {
		t.Error("bad offer accepted")
	}
}

func TestChannelConcurrentSeal(t *testing.T) {
	client, server := established(t)
	const n = 200
	records := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := client.Seal([]byte("msg"))
			if err != nil {
				t.Errorf("seal: %v", err)
				return
			}
			records[i] = rec
		}(i)
	}
	wg.Wait()
	// All records must have distinct sequence numbers.
	seen := map[string]struct{}{}
	for _, rec := range records {
		key := string(rec[:8])
		if _, dup := seen[key]; dup {
			t.Fatal("duplicate sequence number")
		}
		seen[key] = struct{}{}
	}
	_ = server
}

func TestChannelRoundTripProperty(t *testing.T) {
	client, server := established(t)
	f := func(msg []byte) bool {
		rec, err := client.Seal(msg)
		if err != nil {
			return false
		}
		pt, err := server.Open(rec)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkChannelSealOpen(b *testing.B) {
	ch, _ := NewHandshake(RoleClient)
	sh, _ := NewHandshake(RoleServer)
	client, _ := ch.Complete(sh.Offer())
	server, _ := sh.Complete(ch.Offer())
	msg := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := client.Seal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := server.Open(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandshake(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch, _ := NewHandshake(RoleClient)
		sh, _ := NewHandshake(RoleServer)
		if _, err := ch.Complete(sh.Offer()); err != nil {
			b.Fatal(err)
		}
	}
}
