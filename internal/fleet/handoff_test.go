package fleet

import (
	"context"
	"fmt"
	mrand "math/rand/v2"
	"testing"
	"time"

	"xsearch/internal/attestation"
	"xsearch/internal/broker"
	"xsearch/internal/core"
	"xsearch/internal/dataset"
	"xsearch/internal/enclave"
	"xsearch/internal/proxy"
	"xsearch/internal/simattack"
)

// requireInvariant asserts the per-shard EPC identity the whole memory
// story rests on: enclave heap == history bytes + cache bytes + index
// bytes.
func requireInvariant(t *testing.T, label string, ps proxy.Stats) {
	t.Helper()
	if ps.Enclave.HeapBytes != ps.HistoryB+ps.CacheB+ps.IndexB {
		t.Fatalf("%s: EPC invariant broken: heap=%d history=%d cache=%d index=%d",
			label, ps.Enclave.HeapBytes, ps.HistoryB, ps.CacheB, ps.IndexB)
	}
}

// TestDrainSealedHandoff covers the planned-drain path end to end: a shard
// drained mid-session hands its history window to its successor as a
// sealed blob, the heap == history + cache + index invariant holds on both shards
// before the drain and on the successor after it, the drained sessions
// recover by re-attesting, and SimAttack re-identification does not
// improve after the migration (the merged fake pool is no easier to
// attack than the successor's own).
func TestDrainSealedHandoff(t *testing.T) {
	genCfg := dataset.DefaultGeneratorConfig()
	genCfg.Users, genCfg.MeanQueries, genCfg.Seed = 40, 60, 3
	gen, err := dataset.NewGenerator(genCfg)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	log := gen.Generate()
	train, test, err := log.Split(0.5)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	attack, err := simattack.New(train, simattack.DefaultAlpha)
	if err != nil {
		t.Fatalf("simattack: %v", err)
	}

	g, err := New(Config{
		Shards:         2,
		ShardConfig:    proxy.Config{K: 3, EchoMode: true, Seed: 9},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()

	// Fill the shard histories with real past queries through the plain
	// front, mirroring the HRW routing so the test knows each enclave's
	// exact window contents without ever opening the sealed blob.
	trainQueries := train.Queries()
	if len(trainQueries) > 1200 {
		trainQueries = trainQueries[:1200]
	}
	mirrors := make([][]string, 2)
	for _, q := range trainQueries {
		idx := g.rank("q:" + q)[0].index
		if _, err := g.ServeQuery(ctx, q); err != nil {
			t.Fatalf("fill query: %v", err)
		}
		mirrors[idx] = append(mirrors[idx], q)
	}
	if len(mirrors[0]) == 0 || len(mirrors[1]) == 0 {
		t.Fatalf("degenerate routing: mirror sizes %d/%d", len(mirrors[0]), len(mirrors[1]))
	}

	// Establish live sessions on both shards — the drain happens
	// mid-session.
	var brokers []*broker.Broker
	covered := func() bool {
		st := g.Stats()
		return st.Shards[0].Sessions > 0 && st.Shards[1].Sessions > 0
	}
	for i := 0; i < 64 && !covered(); i++ {
		b, err := broker.New(broker.Config{
			ProxyURL:   g.URL(),
			ServiceKey: g.AttestationService().PublicKey(),
			Policy: attestation.Policy{
				AcceptedMeasurements: []enclave.Measurement{g.Measurement()},
			},
		})
		if err != nil {
			t.Fatalf("broker.New: %v", err)
		}
		if err := b.Connect(ctx); err != nil {
			t.Fatalf("Connect: %v", err)
		}
		brokers = append(brokers, b)
	}
	if !covered() {
		t.Fatalf("sessions never covered both shards: %+v", g.Stats().Shards)
	}

	pre := g.Stats()
	for i, ss := range pre.Shards {
		requireInvariant(t, fmt.Sprintf("pre-drain shard %d", i), ss.Proxy)
		if ss.Proxy.HistoryLen != len(mirrors[i]) {
			t.Fatalf("shard %d history %d != mirror %d", i, ss.Proxy.HistoryLen, len(mirrors[i]))
		}
	}

	// Re-identification with the successor's own fake pool, before the
	// migration changes it.
	testLog := &dataset.Log{Records: test.Records}
	if len(testLog.Records) > 150 {
		testLog.Records = testLog.Records[:150]
	}
	rate := func(pool []string) float64 {
		h, err := core.NewHistory(len(pool) + 1)
		if err != nil {
			t.Fatalf("history: %v", err)
		}
		for _, q := range pool {
			h.Add(q)
		}
		rng := mrand.New(mrand.NewPCG(11, 17))
		return attack.EvaluateObfuscated(testLog, func(rec dataset.Record) simattack.Obfuscation {
			fakes := h.Sample(3, rng.IntN)
			pos := rng.IntN(len(fakes) + 1)
			subs := make([]string, 0, len(fakes)+1)
			subs = append(subs, fakes[:pos]...)
			subs = append(subs, rec.Query)
			subs = append(subs, fakes[pos:]...)
			return simattack.Obfuscation{Subqueries: subs, OriginalIndex: pos}
		})
	}
	preRate := rate(mirrors[1])

	rep, err := g.Drain(ctx, 0)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if rep.Successor != 1 {
		t.Fatalf("successor = %d, want 1 (only live shard)", rep.Successor)
	}
	if rep.MigratedQueries != len(mirrors[0]) {
		t.Fatalf("migrated %d queries, want %d", rep.MigratedQueries, len(mirrors[0]))
	}
	if rep.MigratedBytes <= 0 {
		t.Fatalf("migrated %d bytes", rep.MigratedBytes)
	}

	post := g.Stats()
	if post.Shards[0].Alive {
		t.Fatal("drained shard still alive")
	}
	succ := post.Shards[1].Proxy
	requireInvariant(t, "post-drain successor", succ)
	if want := len(mirrors[0]) + len(mirrors[1]); succ.HistoryLen != want {
		t.Fatalf("successor history %d, want %d (own + migrated)", succ.HistoryLen, want)
	}
	if post.Drains != 1 || post.MigratedQueries != uint64(len(mirrors[0])) {
		t.Fatalf("drain counters wrong: %+v", post)
	}

	// Mid-session recovery: every broker — including those whose shard
	// just drained away — keeps working by re-attesting onto the survivor.
	for i, b := range brokers {
		if _, err := b.Search(ctx, fmt.Sprintf("post-drain search %d", i)); err != nil {
			t.Fatalf("post-drain search %d: %v", i, err)
		}
	}

	// The migrated pool is the successor's own plus the drained shard's —
	// a strictly larger, more diverse fake source. Re-identification must
	// not improve (small tolerance for sampling noise).
	postRate := rate(append(append([]string{}, mirrors[1]...), mirrors[0]...))
	if postRate > preRate+0.05 {
		t.Fatalf("re-identification improved after migration: pre=%.3f post=%.3f", preRate, postRate)
	}
}
