// Attack-comparison pits the SimAttack re-identification attack against
// three protection strategies on the same synthetic AOL-like log: no
// obfuscation (unlinkability only, i.e. Tor), PEAS co-occurrence fakes,
// and X-Search real-past-query fakes — the live version of Figure 3.
package main

import (
	"fmt"
	"os"
	"strings"

	"xsearch/internal/dataset"
	"xsearch/internal/experiments"
	"xsearch/internal/simattack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attack-comparison:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("building synthetic AOL-like log (100 active users, 2/3-1/3 split)...")
	fixture, err := experiments.NewFixture(experiments.FixtureConfig{
		Users: 150, MeanQueries: 250, ActiveUsers: 100, Seed: 42,
	})
	if err != nil {
		return err
	}
	stats := fixture.Log.Stats()
	fmt.Printf("log: %d records, %d users, %d unique queries\n\n",
		stats.Records, stats.Users, stats.UniqueQueries)

	sample := fixture.SampleTest(400)
	testLog := &dataset.Log{Records: sample}
	rng := fixture.Rand()

	// Baseline: the adversary sees bare queries from an anonymous source.
	baseline := fixture.Attack.EvaluateUnlinkability(testLog)
	fmt.Printf("%-34s re-identification rate = %.3f\n",
		"unlinkability only (Tor, k=0):", baseline)

	const k = 3
	// PEAS: synthetic fakes from the co-occurrence matrix.
	peasRate := fixture.Attack.EvaluateObfuscated(testLog, func(rec dataset.Record) simattack.Obfuscation {
		fakes := make([]string, 0, k)
		n := len(strings.Fields(rec.Query))
		if n < 1 {
			n = 1
		}
		for i := 0; i < k; i++ {
			fq, err := fixture.CoMatrix.FakeQuery(rng, n)
			if err != nil {
				fq = ""
			}
			fakes = append(fakes, fq)
		}
		return obfuscate(rng.IntN, rec.Query, fakes)
	})
	fmt.Printf("%-34s re-identification rate = %.3f\n",
		fmt.Sprintf("PEAS (k=%d, co-occurrence):", k), peasRate)

	// X-Search: fakes are real past queries of other users.
	xsRate := fixture.Attack.EvaluateObfuscated(testLog, func(rec dataset.Record) simattack.Obfuscation {
		return obfuscate(rng.IntN, rec.Query, fixture.RandomTrainQueries(k))
	})
	fmt.Printf("%-34s re-identification rate = %.3f\n",
		fmt.Sprintf("X-Search (k=%d, real queries):", k), xsRate)

	fmt.Println()
	if peasRate > 0 {
		fmt.Printf("X-Search improves over PEAS by %.0f%% (paper: 23-35%% across k)\n",
			(peasRate-xsRate)/peasRate*100)
	}
	fmt.Printf("obfuscation cuts the k=0 rate by %.0f%%\n",
		(baseline-xsRate)/baseline*100)
	fmt.Println("\nwhy: every X-Search sub-query maps onto some real user's profile,")
	fmt.Println("so the attacker's argmax is pulled toward other users; PEAS fakes")
	fmt.Println("are word combinations no user ever issued and rarely win the argmax.")
	return nil
}

func obfuscate(intn func(int) int, original string, fakes []string) simattack.Obfuscation {
	pos := 0
	if len(fakes) > 0 {
		pos = intn(len(fakes) + 1)
	}
	subs := make([]string, 0, len(fakes)+1)
	subs = append(subs, fakes[:pos]...)
	subs = append(subs, original)
	subs = append(subs, fakes[pos:]...)
	return simattack.Obfuscation{Subqueries: subs, OriginalIndex: pos}
}
