package proxy

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzParseResponse fuzzes the enclave's HTTP/1.1 streaming response
// parser — the one component that consumes wholly hostile bytes (every
// engine response crosses the untrusted runtime). The parser must never
// panic, and an accepted response must respect the enclave's allocation
// caps regardless of what the host streamed.
func FuzzParseResponse(f *testing.F) {
	// Keep-alive with Content-Length framing.
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\nConnection: keep-alive\r\n\r\nhello"))
	// Chunked framing with an extension and a trailer.
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n"))
	// HTTP/1.0 read-to-EOF body.
	f.Add([]byte("HTTP/1.0 200 OK\r\n\r\nunfraaamed body"))
	// Truncated mid-headers.
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Le"))
	// Truncated mid-chunk.
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nshort"))
	// Oversized declared length.
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 99999999999\r\n\r\n"))
	// Negative chunk size and hostile status line.
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n-5\r\n"))
	f.Add([]byte("garbage with no\nstructure at all"))
	// Connection: close with error status.
	f.Add([]byte("HTTP/1.1 503 Unavailable\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"))
	// Header bomb start (the cap must cut it off).
	f.Add([]byte("HTTP/1.1 200 OK\r\n" + strings.Repeat("X-Pad: aaaaaaaa\r\n", 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		body, status, keepAlive, err := readHTTPResponse(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(body) > maxEngineResponse {
			t.Fatalf("accepted %d-byte body beyond the %d cap", len(body), maxEngineResponse)
		}
		if status < 0 {
			t.Fatalf("negative status %d accepted", status)
		}
		// A keep-alive verdict promises the stream sits at a response
		// boundary, which only delimited framings can guarantee.
		_ = keepAlive
	})
}

// FuzzDecodeBatch fuzzes the batched-ecall frame decoder: the count and
// length prefixes are hostile input (the untrusted batcher frames them),
// so no prefix may panic the decoder, drive an oversized allocation, or
// yield entries that do not round-trip through encodeBatch.
func FuzzDecodeBatch(f *testing.F) {
	// Well-formed single- and multi-entry frames.
	f.Add(encodeBatch([][]byte{[]byte(`{"type":"plain","query":"q"}`)}))
	f.Add(encodeBatch([][]byte{[]byte("a"), []byte(""), []byte("ccc")}))
	// Truncated header, zero count, hostile count, oversized entry length.
	f.Add([]byte{1, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})
	// Entry truncated mid-payload and trailing garbage.
	f.Add([]byte{1, 0, 0, 0, 9, 0, 0, 0, 'x', 'y'})
	f.Add(append(encodeBatch([][]byte{[]byte("ok")}), 0xAA))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeBatch(data)
		if err != nil {
			return
		}
		if len(entries) == 0 || len(entries) > maxBatchEntries {
			t.Fatalf("accepted frame with %d entries", len(entries))
		}
		var total int
		for i, e := range entries {
			if len(e) > maxBatchEntryBytes {
				t.Fatalf("entry %d is %d bytes, beyond the %d cap", i, len(e), maxBatchEntryBytes)
			}
			total += len(e)
		}
		if total > len(data) {
			t.Fatalf("entries total %d bytes from a %d-byte frame", total, len(data))
		}
		if !bytes.Equal(encodeBatch(entries), data) {
			t.Fatal("accepted frame does not round-trip through encodeBatch")
		}
	})
}
