package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xsearch/internal/enclave"
	"xsearch/internal/fleet"
	"xsearch/internal/proxy"
	"xsearch/internal/searchengine"
)

// FleetConfig sizes the sharded-fleet ablation. The throughput half
// measures the same workload at increasing shard counts against one
// shared engine: each shard's enclave has few worker threads (TCS) and
// the engine answers with a realistic per-request latency, so a single
// enclave is concurrency-bound — the §6.3 situation the fleet exists to
// escape — and added shards buy near-linear throughput until the engine
// or host saturates. The availability half drives a shard-killed-mid-run
// phase and counts failed requests (the gateway must hold zero), checking
// the per-shard EPC invariant (heap == history + cache + index) at every phase
// boundary.
type FleetConfig struct {
	// ShardCounts are the fleet sizes to measure (e.g. 1, 2, 4).
	ShardCounts []int
	// Workers concurrent clients issue Requests distinct queries per
	// throughput run.
	Workers  int
	Requests int
	// EngineService is the engine's per-request service latency (applied
	// concurrently — the engine itself is not the bottleneck).
	EngineService time.Duration
	// TCSPerShard bounds each shard enclave's concurrent ecalls, the
	// single-enclave concurrency limit the fleet shards around.
	TCSPerShard int
	// KillShards is the fleet size for the availability run; KillRequests
	// the number of requests driven while one shard is killed mid-run.
	KillShards   int
	KillRequests int
	// DocsPerTopic sizes the engine corpus; Seed fixes randomness.
	DocsPerTopic int
	Seed         uint64
}

// DefaultFleetConfig is the full-size ablation.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		ShardCounts:   []int{1, 2, 4},
		Workers:       16,
		Requests:      600,
		EngineService: 3 * time.Millisecond,
		TCSPerShard:   2,
		KillShards:    4,
		KillRequests:  600,
		DocsPerTopic:  20,
		Seed:          1,
	}
}

// FleetPoint is one fleet size's throughput measurement.
type FleetPoint struct {
	Shards     int
	Throughput float64
	// InvariantOK reports whether every live shard satisfied
	// heap == history + cache + index after the run.
	InvariantOK bool
}

// FleetResult carries the ablation's measurements.
type FleetResult struct {
	Points []FleetPoint
	// Speedup is the largest fleet's throughput over the single shard's.
	Speedup float64
	// Availability run: requests driven, requests failed (want zero), and
	// throughput while a quarter of the fleet died mid-run.
	KillTotal   int
	KillErrors  int
	KillRPS     float64
	KilledShard int
	// KillInvariantOK reports the EPC invariant across surviving shards
	// after the kill run.
	KillInvariantOK bool
}

// RunFleet measures fleet scaling and availability end to end.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if len(cfg.ShardCounts) == 0 || cfg.Workers <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("fleet: need shard counts, workers, and requests")
	}
	res := &FleetResult{}
	for _, n := range cfg.ShardCounts {
		pt, err := runFleetThroughput(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("fleet: %d shards: %w", n, err)
		}
		res.Points = append(res.Points, *pt)
	}
	if base := res.Points[0].Throughput; base > 0 {
		res.Speedup = res.Points[len(res.Points)-1].Throughput / base
	}
	if err := runFleetKill(cfg, res); err != nil {
		return nil, fmt.Errorf("fleet: availability: %w", err)
	}
	return res, nil
}

// slowEngine starts a searchengine whose every request takes service time
// (concurrently — modelling a remote engine's response latency, not a
// capacity limit).
func slowEngine(cfg FleetConfig) (*searchengine.Server, error) {
	engine := searchengine.NewEngine(searchengine.WithCorpus(
		searchengine.GenerateCorpus(searchengine.CorpusConfig{
			DocsPerTopic: cfg.DocsPerTopic,
			Seed:         cfg.Seed,
		})))
	srv := searchengine.NewServer(engine)
	srv.DelayFn = func() time.Duration { return cfg.EngineService }
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return srv, nil
}

// newBenchFleet builds an n-shard fleet against the given engine with the
// ablation's concurrency-bound shard enclaves.
func newBenchFleet(cfg FleetConfig, n int, engineAddr string) (*fleet.Gateway, error) {
	return fleet.New(fleet.Config{
		Shards: n,
		ShardConfig: proxy.Config{
			K:             2,
			Engines:       []proxy.EngineSpec{{Host: engineAddr}},
			Seed:          cfg.Seed,
			EnclaveConfig: enclave.Config{TCSCount: cfg.TCSPerShard},
		},
		HealthInterval: 25 * time.Millisecond,
	})
}

// fleetInvariantOK checks heap == history + cache + index on every live shard.
func fleetInvariantOK(g *fleet.Gateway) bool {
	for _, ss := range g.Stats().Shards {
		if !ss.Alive {
			continue
		}
		if ss.Proxy.Enclave.HeapBytes != ss.Proxy.HistoryB+ss.Proxy.CacheB+ss.Proxy.IndexB {
			return false
		}
	}
	return true
}

// driveFleet issues total distinct queries from workers concurrent
// clients, returning elapsed time and the error count. onIndex, when
// non-nil, observes each request index as it is issued (the kill run uses
// it to trigger the crash at a known point in the load without touching
// the measured path).
func driveFleet(g *fleet.Gateway, workers, total int, label string, onIndex func(int64)) (time.Duration, int) {
	var next, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				if onIndex != nil {
					onIndex(i)
				}
				q := fmt.Sprintf("%s query %d", label, i)
				if _, err := g.ServeQuery(context.Background(), q); err != nil {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), int(errs.Load())
}

func runFleetThroughput(cfg FleetConfig, n int) (*FleetPoint, error) {
	srv, err := slowEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	g, err := newBenchFleet(cfg, n, srv.Addr())
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	// Warm the histories so obfuscation has fakes on every shard.
	for i := 0; i < 2*n; i++ {
		if _, err := g.ServeQuery(context.Background(), fmt.Sprintf("fleet warm %d", i)); err != nil {
			return nil, err
		}
	}
	elapsed, errs := driveFleet(g, cfg.Workers, cfg.Requests, fmt.Sprintf("s%d", n), nil)
	if errs > 0 {
		return nil, fmt.Errorf("%d requests failed with every shard healthy", errs)
	}
	return &FleetPoint{
		Shards:      n,
		Throughput:  float64(cfg.Requests) / elapsed.Seconds(),
		InvariantOK: fleetInvariantOK(g),
	}, nil
}

// runFleetKill drives the availability phase: a full fleet serving load
// when one shard is killed (no drain, no warning) a third of the way in.
// The gateway's failover must hold every request.
func runFleetKill(cfg FleetConfig, res *FleetResult) error {
	srv, err := slowEngine(cfg)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	g, err := newBenchFleet(cfg, cfg.KillShards, srv.Addr())
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	for i := 0; i < 2*cfg.KillShards; i++ {
		if _, err := g.ServeQuery(context.Background(), fmt.Sprintf("kill warm %d", i)); err != nil {
			return err
		}
	}
	res.KilledShard = cfg.KillShards - 1
	killAfter := int64(cfg.KillRequests / 3)
	var killOnce sync.Once
	var killErr error
	// Crash the shard under full load, a third of the way into the run,
	// triggered from the issue path itself so nothing polls the gateway
	// while throughput is being measured.
	onIndex := func(i int64) {
		if i == killAfter {
			killOnce.Do(func() { killErr = g.Kill(context.Background(), res.KilledShard) })
		}
	}
	elapsed, errs := driveFleet(g, cfg.Workers, cfg.KillRequests, "kill", onIndex)
	if killErr != nil {
		return killErr
	}
	res.KillTotal = cfg.KillRequests
	res.KillErrors = errs
	res.KillRPS = float64(cfg.KillRequests) / elapsed.Seconds()
	res.KillInvariantOK = fleetInvariantOK(g)
	return nil
}
