package enclave

import (
	"errors"
	"fmt"
)

// Async ocalls are the simulation's switchless-call analogue (Intel's
// switchless SGX SDK calls, HotCalls): instead of paying EENTER/EEXIT for
// every ocall and pinning the calling TCS for the ocall's full duration,
// trusted code posts a request descriptor to a submission ring in shared
// memory and RETURNS from its ecall; untrusted worker goroutines service
// the ring and post results to a completion ring, which the untrusted
// runtime drains out-of-band. The two costs this removes are exactly the
// paper's two SGX performance costs at scale: boundary transitions (a
// submission pays none) and TCS occupancy (the enclave thread is free
// while the call is in flight). The price is a staged programming model —
// the ecall that submitted cannot see the result; a later ecall must be
// re-entered with the completion.

// ErrAsyncDisabled is returned by OCallAsync when the enclave was built
// without async workers.
var ErrAsyncDisabled = errors.New("enclave: async ocalls not configured")

// asyncCall is one submission-ring entry.
type asyncCall struct {
	id   uint64
	name string
	arg  []byte
}

// AsyncCompletion is one completion-ring entry: the result of a previously
// submitted async ocall. Exactly one completion is produced per submission
// accepted by OCallAsync, in service order (not submission order).
type AsyncCompletion struct {
	// ID is the submission handle OCallAsync returned.
	ID uint64
	// Result and Err are the ocall handler's return values. Like every
	// ocall result, they originate outside the enclave and are hostile
	// input to whatever trusted code consumes them.
	Result []byte
	Err    error
}

// startAsyncWorkers wires the rings and spawns the untrusted worker pool.
// Called from Build when Config.AsyncWorkers > 0.
func (e *Enclave) startAsyncWorkers() {
	workers := e.cfg.AsyncWorkers
	depth := e.cfg.AsyncRingDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	e.asyncSub = make(chan asyncCall, depth)
	e.asyncDone = make(chan AsyncCompletion, depth)
	e.asyncStop = make(chan struct{})
	for i := 0; i < workers; i++ {
		go e.asyncWorker()
	}
}

// asyncWorker services the submission ring: pop a call, run its untrusted
// handler, push the completion. The handler runs entirely outside the
// enclave, so no transition cost is paid on either ring — the switchless
// point. A completion that cannot be pushed before the enclave is
// destroyed is dropped (its consumer is gone with the enclave).
func (e *Enclave) asyncWorker() {
	for {
		select {
		case <-e.asyncStop:
			return
		case call := <-e.asyncSub:
			e.mu.Lock()
			h, ok := e.ocalls[call.name]
			e.mu.Unlock()
			var c AsyncCompletion
			c.ID = call.id
			if !ok {
				c.Err = fmt.Errorf("%w: %q", ErrUnknownOCall, call.name)
			} else {
				c.Result, c.Err = h(call.arg)
			}
			e.asyncCompleted.Add(1)
			select {
			case e.asyncDone <- c:
			case <-e.asyncStop:
				return
			}
		}
	}
}

// Completions returns the completion ring. The untrusted runtime drains it
// and re-enters the enclave with each result; a full ring applies
// backpressure to the workers, never to trusted code. Nil when the enclave
// was built without async workers.
func (e *Enclave) Completions() <-chan AsyncCompletion { return e.asyncDone }

// stopAsync tears the rings down on Destroy. In-flight handler calls run
// to completion in their worker goroutines; their completions are dropped.
func (e *Enclave) stopAsync() {
	if e.asyncStop != nil {
		close(e.asyncStop)
	}
}

// OCallAsync posts an ocall to the submission ring and returns immediately
// with a completion handle, paying NO transition cost: the descriptor is
// written to shared memory, not carried across the enclave boundary by the
// calling thread. The calling ecall should return soon after, releasing
// its TCS while the call is serviced; the result arrives on the completion
// ring. A full submission ring blocks (backpressure) until a worker drains
// it or the enclave is destroyed.
func (v *env) OCallAsync(name string, arg []byte) (uint64, error) {
	e := v.e
	if e.asyncSub == nil {
		return 0, ErrAsyncDisabled
	}
	e.mu.Lock()
	_, ok := e.ocalls[name]
	destroyed := e.destroyed
	e.mu.Unlock()
	if destroyed {
		return 0, ErrDestroyed
	}
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownOCall, name)
	}
	id := e.asyncID.Add(1)
	select {
	case e.asyncSub <- asyncCall{id: id, name: name, arg: arg}:
	case <-e.asyncStop:
		return 0, ErrDestroyed
	}
	// Counted as soon as the ring accepted the call — including the
	// raced-by-stop case below, where a lingering worker may still service
	// it — so asyncCompleted can never exceed asyncSubmitted.
	e.asyncSubmitted.Add(1)
	e.ocallCount.Add(1)
	select {
	case <-e.asyncStop:
		// Stop raced the send (a buffered ring makes both cases of the
		// select above ready): the workers may already have exited with
		// the call still buffered, so no completion is guaranteed. Report
		// failure; at worst a worker still drains it and the orphaned
		// completion is dropped with the enclave.
		return 0, ErrDestroyed
	default:
	}
	return id, nil
}

// asyncCounters snapshots the async accounting for Stats.
func (e *Enclave) asyncCounters() (submitted, completed uint64) {
	return e.asyncSubmitted.Load(), e.asyncCompleted.Load()
}
