package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"xsearch/internal/attestation"
	"xsearch/internal/broker"
	"xsearch/internal/enclave"
	"xsearch/internal/proxy"
	"xsearch/internal/searchengine"
)

// echoFleet builds a fleet of echo-mode shards (no engine needed) with a
// health interval long enough that tests exercise the request-path death
// discovery unless they opt into the probe loop.
func echoFleet(t *testing.T, shards int, healthInterval time.Duration) *Gateway {
	t.Helper()
	g, err := New(Config{
		Shards:         shards,
		ShardConfig:    proxy.Config{K: 2, EchoMode: true, Seed: 5},
		HealthInterval: healthInterval,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	})
	return g
}

func TestHRWRoutingIsDeterministicAndSpreads(t *testing.T) {
	g := echoFleet(t, 4, time.Hour)
	seen := make(map[int]int)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("q:query %d", i)
		first := g.rank(key)[0].index
		for rep := 0; rep < 3; rep++ {
			if got := g.rank(key)[0].index; got != first {
				t.Fatalf("key %q ranked shard %d then %d", key, first, got)
			}
		}
		seen[first]++
	}
	if len(seen) != 4 {
		t.Fatalf("64 keys landed on only %d of 4 shards: %v", len(seen), seen)
	}
}

func TestPlainQueriesFailOverOnShardKill(t *testing.T) {
	g := echoFleet(t, 4, time.Hour) // health loop effectively off
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if _, err := g.ServeQuery(ctx, fmt.Sprintf("warm query %d", i)); err != nil {
			t.Fatalf("warm query %d: %v", i, err)
		}
	}
	if err := g.Kill(ctx, 2); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	// Every query must still succeed; the ones whose HRW shard was killed
	// discover the death on first touch and fail over.
	for i := 0; i < 40; i++ {
		if _, err := g.ServeQuery(ctx, fmt.Sprintf("warm query %d", i)); err != nil {
			t.Fatalf("post-kill query %d: %v", i, err)
		}
	}
	st := g.Stats()
	if st.Failovers == 0 {
		t.Fatalf("expected failovers after killing a shard, stats: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("no request should have failed, got %d errors", st.Errors)
	}
	if st.AliveShards != 3 {
		t.Fatalf("AliveShards = %d, want 3", st.AliveShards)
	}
}

func TestHealthLoopRetiresDeadShard(t *testing.T) {
	g := echoFleet(t, 3, 10*time.Millisecond)
	ctx := context.Background()
	if err := g.Kill(ctx, 1); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if g.Stats().AliveShards == 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("health loop never retired the killed shard: %+v", g.Stats())
}

func TestDrainNeedsALiveSuccessor(t *testing.T) {
	g := echoFleet(t, 1, time.Hour)
	if _, err := g.Drain(context.Background(), 0); err == nil {
		t.Fatal("draining the only shard should fail")
	}
	if !g.shards[0].available() {
		t.Fatal("failed drain must leave the shard available")
	}
}

// TestFleetPassesPipelineConfigAndMergesGauges builds an async-pipelined
// fleet: every shard must run the staged hot path (the template's
// AsyncOcalls/PipelineDepth flow through to each shard's enclave) and the
// fleet snapshot must merge the per-shard pipeline gauges.
func TestFleetPassesPipelineConfigAndMergesGauges(t *testing.T) {
	engine := searchengine.NewEngine(searchengine.WithCorpus(
		searchengine.GenerateCorpus(searchengine.CorpusConfig{DocsPerTopic: 10, Seed: 1})))
	srv := searchengine.NewServer(engine)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("engine: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	g, err := New(Config{
		Shards: 2,
		ShardConfig: proxy.Config{
			K:             2,
			Engines:       []proxy.EngineSpec{{Host: srv.Addr()}},
			Seed:          7,
			AsyncOcalls:   true,
			PipelineDepth: 8,
		},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()

	ctx := context.Background()
	for i := 0; i < 16; i++ {
		if _, err := g.ServeQuery(ctx, fmt.Sprintf("pipeline fleet query %d", i)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	st := g.Stats()
	var perShard uint64
	shardsUsed := 0
	for _, ss := range st.Shards {
		if ss.Proxy.PipelineDepth != 8 {
			t.Errorf("shard %d pipeline depth = %d, want 8", ss.Index, ss.Proxy.PipelineDepth)
		}
		if ss.Proxy.AsyncSubmitted > 0 {
			shardsUsed++
		}
		perShard += ss.Proxy.AsyncSubmitted
	}
	if shardsUsed < 2 {
		t.Errorf("only %d of 2 shards ran async fetches", shardsUsed)
	}
	if st.AsyncSubmitted != perShard || st.AsyncSubmitted == 0 {
		t.Errorf("merged AsyncSubmitted = %d, per-shard sum = %d", st.AsyncSubmitted, perShard)
	}
}

// TestBrokerSessionsSurviveShardKill runs the attested client path end to
// end through the gateway: brokers handshake onto HRW-pinned shards, a
// shard is killed, and every broker keeps working because session loss
// makes it re-attest onto a live shard.
func TestBrokerSessionsSurviveShardKill(t *testing.T) {
	engine := searchengine.NewEngine(searchengine.WithCorpus(
		searchengine.GenerateCorpus(searchengine.CorpusConfig{DocsPerTopic: 10, Seed: 1})))
	srv := searchengine.NewServer(engine)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("engine: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	g, err := New(Config{
		Shards: 2,
		ShardConfig: proxy.Config{
			K:       2,
			Engines: []proxy.EngineSpec{{Host: srv.Addr()}},
			Seed:    7,
		},
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = g.Shutdown(ctx)
	}()
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}

	ctx := context.Background()
	// Keep connecting brokers until both shards hold at least one session
	// (offers are random, so placement is random but quickly covers both).
	var brokers []*broker.Broker
	shardsCovered := func() bool {
		st := g.Stats()
		return len(st.Shards) == 2 && st.Shards[0].Sessions > 0 && st.Shards[1].Sessions > 0
	}
	for i := 0; i < 64 && !shardsCovered(); i++ {
		b, err := broker.New(broker.Config{
			ProxyURL:   g.URL(),
			ServiceKey: g.AttestationService().PublicKey(),
			Policy: attestation.Policy{
				AcceptedMeasurements: []enclave.Measurement{g.Measurement()},
			},
		})
		if err != nil {
			t.Fatalf("broker.New: %v", err)
		}
		if err := b.Connect(ctx); err != nil {
			t.Fatalf("Connect: %v", err)
		}
		brokers = append(brokers, b)
	}
	if !shardsCovered() {
		t.Fatalf("sessions never covered both shards: %+v", g.Stats().Shards)
	}

	for i, b := range brokers {
		if _, err := b.Search(ctx, fmt.Sprintf("healthy search %d", i)); err != nil {
			t.Fatalf("healthy search %d: %v", i, err)
		}
	}
	if err := g.Kill(ctx, 0); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	// Every broker must keep working: the ones whose shard died get a
	// session-loss error from the gateway, re-attest, and land on shard 1.
	for i, b := range brokers {
		if _, err := b.Search(ctx, fmt.Sprintf("post-kill search %d", i)); err != nil {
			t.Fatalf("post-kill search %d: %v", i, err)
		}
	}
	st := g.Stats()
	if st.SessionsLost == 0 {
		t.Fatalf("expected lost sessions after kill, stats: %+v", st)
	}
	if st.Shards[0].Alive || !st.Shards[1].Alive {
		t.Fatalf("shard liveness wrong: %+v", st.Shards)
	}
	if len(st.Upstreams) != 1 || st.Upstreams[0].Served == 0 {
		t.Fatalf("merged upstream stats wrong: %+v", st.Upstreams)
	}
}
