package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"
)

// Histogram is an HDR-style latency histogram with logarithmic buckets and
// linear sub-buckets, safe for concurrent recording. It covers values from
// 1 microsecond upward with bounded (~1.6%) relative error, the same
// trade-off wrk2 makes for its latency recording.
type Histogram struct {
	mu       sync.Mutex
	counts   []uint64
	total    uint64
	maxValue time.Duration
}

const (
	histMinValue    = time.Microsecond
	histSubBuckets  = 128 // per power-of-two bucket; bounds relative error
	log2SubBuckets  = 7   // log2(histSubBuckets)
	histShiftLevels = 40  // highest shift level; covers > 1 year in µs
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, (histShiftLevels+1)*histSubBuckets),
	}
}

// bucketIndex maps a value in microseconds to a bucket index. Values below
// 128 µs map linearly (exact); above that, each power-of-two range is split
// into 64 used sub-buckets, giving <= 1/64 relative error.
func bucketIndex(us uint64) int {
	if us < histSubBuckets {
		return int(us)
	}
	bucket := bits.Len64(us) - 1 // floor(log2(us)), >= 7
	// Choose shift so us>>shift lands in [64, 128): shift >= 1 always.
	shift := bucket - (log2SubBuckets - 1)
	idx := shift*histSubBuckets + int(us>>uint(shift))
	if idx >= (histShiftLevels+1)*histSubBuckets {
		idx = (histShiftLevels+1)*histSubBuckets - 1
	}
	return idx
}

// valueAt returns the representative duration (bucket midpoint) of idx.
func valueAt(idx int) time.Duration {
	if idx < histSubBuckets {
		return time.Duration(idx) * histMinValue
	}
	shift := idx / histSubBuckets // >= 1 in the logarithmic region
	sub := idx % histSubBuckets   // in [64, 128)
	us := uint64(sub)<<uint(shift) + uint64(1)<<uint(shift-1)
	return time.Duration(us) * histMinValue
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	us := uint64(d / histMinValue)
	idx := bucketIndex(us)
	h.mu.Lock()
	h.counts[idx]++
	h.total++
	if d > h.maxValue {
		h.maxValue = d
	}
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Max returns the largest recorded value.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxValue
}

// Percentile returns the duration at percentile p in [0, 100].
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			v := valueAt(i)
			if v > h.maxValue {
				v = h.maxValue
			}
			return v
		}
	}
	return h.maxValue
}

// Mean returns the approximate mean of recorded values.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		if c > 0 {
			sum += float64(valueAt(i)) * float64(c)
		}
	}
	return time.Duration(sum / float64(h.total))
}

// Snapshot returns a point-in-time percentile summary.
func (h *Histogram) Snapshot() LatencySnapshot {
	return LatencySnapshot{
		Count: h.Count(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Mean:  h.Mean(),
		Max:   h.Max(),
	}
}

// LatencySnapshot is a point-in-time summary of a Histogram. The JSON
// tags serve the /stats and /metrics observability surface: aggregate
// percentiles only, never per-request samples.
type LatencySnapshot struct {
	Count uint64        `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Mean  time.Duration `json:"mean_ns"`
	Max   time.Duration `json:"max_ns"`
}

// String renders the snapshot on one line.
func (s LatencySnapshot) String() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p95=%v p99=%v p99.9=%v mean=%v max=%v",
		s.Count, s.P50, s.P90, s.P95, s.P99, s.P999, s.Mean, s.Max)
}
