package proxy

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xsearch/internal/obs"
	"xsearch/internal/searchengine"
)

// Tests for in-enclave TLS on the async pipeline: every socket operation
// of a pinned-root HTTPS fetch rides the switchless "tls_step" ocall
// while handshake and record crypto stay trusted.

// newTLSDelayEngine boots an HTTPS engine whose per-request delay reads
// an atomic (tests flip it mid-run to race hedges). Returns the server
// and its root PEM for pinning.
func newTLSDelayEngine(t *testing.T, delay *atomic.Int64) (*searchengine.Server, []byte) {
	t.Helper()
	engine := searchengine.NewEngine(searchengine.WithCorpus(
		searchengine.GenerateCorpus(searchengine.CorpusConfig{DocsPerTopic: 10, Seed: 1})))
	srv := searchengine.NewServer(engine)
	if delay != nil {
		srv.DelayFn = func() time.Duration { return time.Duration(delay.Load()) }
	}
	cert, pem, err := searchengine.GenerateSelfSignedCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.StartTLS("127.0.0.1:0", cert); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, pem
}

func newAsyncTLSProxy(t *testing.T, mutate func(*Config), engines ...EngineSpec) *Proxy {
	t.Helper()
	cfg := Config{
		K:           1,
		Seed:        1,
		Engines:     engines,
		AsyncOcalls: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Crash)
	return p
}

func TestAsyncTLSFetch(t *testing.T) {
	srv, pem := newTLSDelayEngine(t, nil)
	p := newAsyncTLSProxy(t, func(c *Config) { c.Observability = true },
		EngineSpec{Host: srv.Addr(), RootsPEM: pem})

	for i := 0; i < 6; i++ {
		results, err := p.ServeQuery(context.Background(), fmt.Sprintf("chicken recipe %d", i))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(results) == 0 {
			t.Fatalf("query %d: no results over async enclave TLS", i)
		}
	}
	s := p.Stats()
	if s.AsyncSubmitted == 0 {
		t.Fatal("no async submissions: the TLS fetch bypassed the pipeline")
	}
	// Keep-alive pooling carries the trusted TLS session across queries.
	var up UpstreamStats
	for _, u := range s.Upstreams {
		up = u
	}
	if up.PoolReuses == 0 {
		t.Errorf("no TLS session reuse across queries: %+v", up)
	}
	// The handshake stage must have recorded trusted-side observations.
	if s.Stages[obs.StageTLSHandshake].Count == 0 {
		t.Errorf("handshake stage recorded nothing: %+v", s.Stages)
	}
	assertEPCInvariant(t, p)
}

// TestAsyncTLSRejectsUnknownCA: the pinned-root check still bites on the
// async path.
func TestAsyncTLSRejectsUnknownCA(t *testing.T) {
	srv, _ := newTLSDelayEngine(t, nil)
	_, otherPEM, err := searchengine.GenerateSelfSignedCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	p := newAsyncTLSProxy(t, nil, EngineSpec{Host: srv.Addr(), RootsPEM: otherPEM})
	_, err = p.ServeQuery(context.Background(), "chicken recipe")
	if err == nil {
		t.Fatal("enclave accepted engine with unpinned certificate on the async path")
	}
	if !strings.Contains(err.Error(), "TLS") && !strings.Contains(err.Error(), "certificate") {
		t.Errorf("unexpected error: %v", err)
	}
	s := p.Stats()
	if len(s.Upstreams) != 1 || s.Upstreams[0].Failures == 0 {
		t.Errorf("cert mismatch not counted against the breaker: %+v", s.Upstreams)
	}
	assertEPCInvariant(t, p)
}

// Batched stage-1 submission and TLS flights compose: the batch ecall
// bursts several first steps, each request then ping-pongs its own
// flight.
func TestAsyncTLSBatchedFetch(t *testing.T) {
	srv, pem := newTLSDelayEngine(t, nil)
	p := newAsyncTLSProxy(t, func(c *Config) {
		c.BatchMax = 4
		c.BatchWindow = 2 * time.Millisecond
	}, EngineSpec{Host: srv.Addr(), RootsPEM: pem})

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.ServeQuery(context.Background(), fmt.Sprintf("batched tls query %d", i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if s := p.Stats(); s.BatchesSubmitted == 0 {
		t.Error("no batches submitted: the test did not exercise batching")
	}
	assertEPCInvariant(t, p)
}

// Hedging with both upstreams HTTPS: the hedge must win against a slow
// TLS primary, the loser's flight must cancel cleanly, and the loser's
// pool must not be poisoned — once the primary is fast again it serves
// fresh queries over pooled sessions.
func TestAsyncTLSHedgedFetch(t *testing.T) {
	var delayA atomic.Int64
	delayA.Store(int64(400 * time.Millisecond))
	slowSrv, slowPEM := newTLSDelayEngine(t, &delayA)
	fastSrv, fastPEM := newTLSDelayEngine(t, nil)
	p := newAsyncTLSProxy(t, func(c *Config) {
		c.HedgeMax = 1
		c.HedgeDelay = 5 * time.Millisecond
	},
		EngineSpec{Host: slowSrv.Addr(), RootsPEM: slowPEM, Weight: 100},
		EngineSpec{Host: fastSrv.Addr(), RootsPEM: fastPEM, Weight: 1},
	)

	results, err := p.ServeQuery(context.Background(), "hedged tls query")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	s := p.Stats()
	if s.HedgeAttempts == 0 {
		t.Fatal("hedge never fired (delays too coarse?)")
	}
	if s.HedgeWins == 0 {
		t.Error("hedge against a 400ms TLS primary did not win")
	}
	if s.HedgeCancelled == 0 {
		t.Error("losing TLS flight was not cancelled")
	}
	assertEPCInvariant(t, p)

	// The cancelled loser must not have poisoned the slow upstream: made
	// fast again it answers, and over intact pooled TLS sessions.
	delayA.Store(0)
	for i := 0; i < 6; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("post-hedge query %d", i)); err != nil {
			t.Fatalf("post-hedge query %d: %v", i, err)
		}
	}
	assertEPCInvariant(t, p)
}

// The hedge re-arm semantics of TestHedgeRearmUsesHedgedUpstreamDelay
// hold unchanged when every upstream is HTTPS: the second hedge waits the
// cold upstream's DefaultHedgeDelay, not the warm primary's floor delay.
// (TLS flights bypass the untrusted fetcher's latency histograms, so the
// warm-up below uses f.record directly, as the plain test does.)
func TestAsyncTLSHedgeRearmUsesHedgedUpstreamDelay(t *testing.T) {
	var slow atomic.Int64
	slow.Store(int64(300 * time.Millisecond))
	slowA, pemA := newTLSDelayEngine(t, &slow)
	slowB, pemB := newTLSDelayEngine(t, &slow)
	fastC, pemC := newTLSDelayEngine(t, nil)
	p := newAsyncTLSProxy(t, func(c *Config) {
		c.HedgeMax = 2
		// HedgeDelay zero: the p95-auto path under test.
	},
		EngineSpec{Host: slowA.Addr(), RootsPEM: pemA},
		EngineSpec{Host: slowB.Addr(), RootsPEM: pemB},
		EngineSpec{Host: fastC.Addr(), RootsPEM: pemC},
	)

	f := p.conns.fetch
	for i := 0; i < autoHedgeMinSamples; i++ {
		f.record(slowA.Addr(), 100*time.Microsecond)
	}
	if d := p.hedgeDelayFor(slowA.Addr()); d != autoHedgeFloor {
		t.Fatalf("warm primary delay = %v, want floor %v", d, autoHedgeFloor)
	}
	if d := p.hedgeDelayFor(slowB.Addr()); d != DefaultHedgeDelay {
		t.Fatalf("cold upstream delay = %v, want default %v", d, DefaultHedgeDelay)
	}

	done := make(chan error, 1)
	go func() {
		_, err := p.ServeQuery(context.Background(), "cold rearm query tls")
		done <- err
	}()

	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().HedgeAttempts < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first hedge never fired")
		}
		time.Sleep(200 * time.Microsecond)
	}
	hold := time.Now().Add(5 * time.Millisecond)
	for time.Now().Before(hold) {
		if n := p.Stats().HedgeAttempts; n > 1 {
			t.Fatalf("second hedge fired inside the cold upstream's %v window: re-arm used the primary's stale delay",
				DefaultHedgeDelay)
		}
		time.Sleep(200 * time.Microsecond)
	}

	if err := <-done; err != nil {
		t.Fatalf("query: %v", err)
	}
	if s := p.Stats(); s.HedgeAttempts != 2 {
		t.Errorf("hedge attempts = %d, want 2", s.HedgeAttempts)
	}
	assertEPCInvariant(t, p)
}

// Session-reuse churn: concurrent queries checking trusted TLS sessions
// in and out of a small pool, racing terminal resumes, close steps, and
// fresh dials. Everything must complete and the pool gauges must show
// actual reuse.
func TestAsyncTLSSessionReuseChurn(t *testing.T) {
	srv, pem := newTLSDelayEngine(t, nil)
	p := newAsyncTLSProxy(t, nil,
		EngineSpec{Host: srv.Addr(), RootsPEM: pem, MaxConns: 2})

	const workers = 8
	const perWorker = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := p.ServeQuery(context.Background(),
					fmt.Sprintf("churn w%d q%d", w, i)); err != nil {
					errCh <- fmt.Errorf("w%d q%d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	s := p.Stats()
	var up UpstreamStats
	for _, u := range s.Upstreams {
		up = u
	}
	if up.PoolReuses == 0 {
		t.Errorf("no TLS session reuse under churn: %+v", up)
	}
	if up.PoolIdle > 2 {
		t.Errorf("pool over capacity: %d idle (max 2)", up.PoolIdle)
	}
	assertEPCInvariant(t, p)
}

// --- hostile TLS engines (satellite of the ciphertext-is-untrusted rule:
// everything the host relays is attacker-controlled) ---

// hostileTLSEngine accepts TCP connections and hands each to script.
func hostileTLSEngine(t *testing.T, script func(net.Conn)) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go script(conn)
		}
	}()
	return ln
}

// somePEM returns a syntactically valid root to pin against engines that
// will never complete a handshake anyway.
func somePEM(t *testing.T) []byte {
	t.Helper()
	_, pem, err := searchengine.GenerateSelfSignedCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	return pem
}

// assertTLSFailureAccounting drives one query against a single hostile
// upstream on both transports and checks the shared contract: the query
// fails without panicking, within bound, the breaker counts EXACTLY one
// failure for the one attempt, and the EPC invariant holds after the
// wreckage is swept.
func assertTLSFailureAccounting(t *testing.T, addr string, pem []byte, async bool) {
	t.Helper()
	p, err := New(Config{
		K:            1,
		Seed:         1,
		Engines:      []EngineSpec{{Host: addr, RootsPEM: pem}},
		AsyncOcalls:  async,
		FetchTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Crash()
	start := time.Now()
	_, err = p.ServeQuery(context.Background(), "query for a hostile engine")
	if err == nil {
		t.Fatalf("async=%t: query against hostile TLS engine succeeded", async)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("async=%t: failed only after %v: FetchTimeout did not bound the handshake", async, elapsed)
	}
	s := p.Stats()
	if len(s.Upstreams) != 1 || s.Upstreams[0].Failures != 1 {
		t.Fatalf("async=%t: breaker counted %+v, want exactly 1 failure", async, s.Upstreams)
	}
	assertEPCInvariant(t, p)
}

// Truncated handshake: the engine sends half a ServerHello record and
// slams the connection.
func TestHostileTLSTruncatedHandshake(t *testing.T) {
	ln := hostileTLSEngine(t, func(c net.Conn) {
		buf := make([]byte, 1024)
		_, _ = c.Read(buf) // swallow the ClientHello
		// Record header promising 64 bytes of handshake, then 10 bytes.
		_, _ = c.Write([]byte{0x16, 0x03, 0x03, 0x00, 0x40, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
		_ = c.Close()
	})
	pem := somePEM(t)
	for _, async := range []bool{false, true} {
		assertTLSFailureAccounting(t, ln.Addr().String(), pem, async)
	}
}

// Record bomb: a record header declaring the maximum length crypto/tls
// will refuse, followed by garbage. The enclave must reject it at the
// record layer without buffering the promised payload.
func TestHostileTLSOversizedRecord(t *testing.T) {
	ln := hostileTLSEngine(t, func(c net.Conn) {
		buf := make([]byte, 1024)
		_, _ = c.Read(buf)
		// 0xFFFF-byte record: over the TLS ceiling; stream garbage after.
		_, _ = c.Write([]byte{0x16, 0x03, 0x03, 0xff, 0xff})
		junk := make([]byte, 4096)
		for {
			if _, err := c.Write(junk); err != nil {
				return
			}
		}
	})
	pem := somePEM(t)
	for _, async := range []bool{false, true} {
		assertTLSFailureAccounting(t, ln.Addr().String(), pem, async)
	}
}

// Slow-loris handshake: the engine dribbles one byte at a time, forever.
// Only the FetchTimeout deadline (now spanning the handshake on both
// paths) gets the request back.
func TestHostileTLSSlowLorisHandshake(t *testing.T) {
	ln := hostileTLSEngine(t, func(c net.Conn) {
		defer c.Close()
		buf := make([]byte, 1024)
		_, _ = c.Read(buf)
		drip := []byte{0x16, 0x03, 0x03, 0x00, 0x40}
		for _, b := range drip {
			if _, err := c.Write([]byte{b}); err != nil {
				return
			}
			time.Sleep(80 * time.Millisecond)
		}
		// Then nothing, holding the socket open.
		time.Sleep(10 * time.Second)
	})
	pem := somePEM(t)
	for _, async := range []bool{false, true} {
		assertTLSFailureAccounting(t, ln.Addr().String(), pem, async)
	}
}

// Cert mismatch under failover: a wrong-cert primary is an ordinary
// failing upstream — requests fail over to the healthy HTTPS engine and
// the mismatch is charged to the primary's breaker.
func TestHostileTLSCertMismatchFailover(t *testing.T) {
	badSrv, _ := newTLSDelayEngine(t, nil) // presents its own cert...
	goodSrv, goodPEM := newTLSDelayEngine(t, nil)
	wrongPin := somePEM(t) // ...but the enclave pins a different root
	p := newAsyncTLSProxy(t, func(c *Config) {
		c.UpstreamFailThreshold = 2
		c.UpstreamCooldown = time.Minute
	},
		EngineSpec{Host: badSrv.Addr(), RootsPEM: wrongPin, Weight: 4},
		EngineSpec{Host: goodSrv.Addr(), RootsPEM: goodPEM, Weight: 1},
	)

	for i := 0; i < 8; i++ {
		if _, err := p.ServeQuery(context.Background(), fmt.Sprintf("failover tls query %d", i)); err != nil {
			t.Fatalf("query %d: %v (the healthy HTTPS upstream should have answered)", i, err)
		}
		assertEPCInvariant(t, p)
	}
	s := p.Stats()
	var bad, good UpstreamStats
	for _, u := range s.Upstreams {
		if u.Host == badSrv.Addr() {
			bad = u
		} else {
			good = u
		}
	}
	if bad.Failures == 0 {
		t.Fatalf("cert-mismatch upstream recorded no failures: %+v", s.Upstreams)
	}
	if !bad.CoolingDown {
		t.Fatalf("cert-mismatch upstream's breaker never opened: %+v", bad)
	}
	if good.Served == 0 {
		t.Fatalf("healthy HTTPS upstream served nothing: %+v", s.Upstreams)
	}
}
