package tmn

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"xsearch/internal/dataset"
)

func newsVocab() map[string]struct{} {
	set := make(map[string]struct{}, len(dataset.NewsWords))
	for _, w := range dataset.NewsWords {
		set[w] = struct{}{}
	}
	return set
}

func TestNewFeedValidation(t *testing.T) {
	if _, err := NewFeed(0, 1); err == nil {
		t.Error("zero headlines accepted")
	}
}

func TestFeedHeadlines(t *testing.T) {
	f, err := NewFeed(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs := f.Headlines()
	if len(hs) != 50 {
		t.Fatalf("got %d headlines", len(hs))
	}
	vocab := newsVocab()
	for _, h := range hs {
		words := strings.Fields(h)
		if len(words) < 4 || len(words) > 8 {
			t.Errorf("headline %q has %d words", h, len(words))
		}
		for _, w := range words {
			if _, ok := vocab[w]; !ok {
				t.Errorf("headline word %q not in news vocabulary", w)
			}
		}
	}
}

func TestFeedDeterministic(t *testing.T) {
	f1, err := NewFeed(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFeed(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := f1.Headlines(), f2.Headlines()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("feeds differ under same seed")
		}
	}
}

func TestFeedRefresh(t *testing.T) {
	f, err := NewFeed(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := f.Headlines()
	f.Refresh(0.5)
	after := f.Headlines()
	changed := 0
	for i := range before {
		if before[i] != after[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("refresh changed nothing")
	}
}

func TestFakeQueryFromNewsVocabulary(t *testing.T) {
	f, err := NewFeed(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(f, 2)
	vocab := newsVocab()
	for i := 0; i < 100; i++ {
		fq := g.FakeQuery()
		words := strings.Fields(fq)
		if len(words) < 1 || len(words) > 3 {
			t.Errorf("fake %q has %d words", fq, len(words))
		}
		for _, w := range words {
			if _, ok := vocab[w]; !ok {
				t.Errorf("fake word %q not from news vocabulary", w)
			}
		}
	}
}

// The Figure 1 property: TMN fakes share (almost) no vocabulary with
// topical user queries.
func TestFakesDisjointFromQueryTopics(t *testing.T) {
	topicVocab := map[string]struct{}{}
	for _, topic := range dataset.Topics {
		for _, w := range topic.Words {
			topicVocab[w] = struct{}{}
		}
	}
	f, err := NewFeed(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(f, 2)
	overlap := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		for _, w := range strings.Fields(g.FakeQuery()) {
			if _, ok := topicVocab[w]; ok {
				overlap++
			}
		}
	}
	if overlap > trials/10 {
		t.Errorf("news fakes overlap topic vocabulary %d times", overlap)
	}
}

func TestNewAgentValidation(t *testing.T) {
	f, err := NewFeed(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(f, 1)
	if _, err := NewAgent(g, 0, func(string) {}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewAgent(g, time.Second, nil); err == nil {
		t.Error("nil send accepted")
	}
}

func TestAgentEmitsFakes(t *testing.T) {
	f, err := NewFeed(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(f, 1)
	var mu sync.Mutex
	var got []string
	agent, err := NewAgent(g, 5*time.Millisecond, func(q string) {
		mu.Lock()
		got = append(got, q)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	agent.Run(ctx)
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n < 3 {
		t.Errorf("agent emitted only %d fakes", n)
	}
}
